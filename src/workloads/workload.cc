#include "workloads/workload.hh"

#include <algorithm>

#include "sim/log.hh"

namespace hdpat
{

InterleavedStream::InterleavedStream(std::vector<Channel> channels,
                                     std::size_t max_ops)
    : channels_(std::move(channels)), remainingOps_(max_ops)
{
    hdpat_fatal_if(channels_.empty(), "stream needs at least one channel");
    credits_.reserve(channels_.size());
    for (const Channel &c : channels_) {
        hdpat_fatal_if(c.weight <= 0, "channel weight must be positive");
        credits_.push_back(c.weight);
    }
}

std::optional<Addr>
InterleavedStream::next()
{
    if (remainingOps_ == 0)
        return std::nullopt;
    --remainingOps_;

    // Round-robin by weight: serve the cursor channel until its credit
    // for this round is spent, then move on; refill when all are spent.
    std::size_t scanned = 0;
    while (credits_[cursor_] == 0) {
        cursor_ = (cursor_ + 1) % channels_.size();
        if (++scanned > channels_.size()) {
            for (std::size_t i = 0; i < channels_.size(); ++i)
                credits_[i] = channels_[i].weight;
            scanned = 0;
        }
    }
    --credits_[cursor_];
    return channels_[cursor_].gen();
}

std::function<Addr()>
seqChannel(Addr base, std::size_t bytes, std::size_t stride,
           std::size_t start_offset)
{
    hdpat_fatal_if(bytes == 0 || stride == 0, "bad seq channel");
    return [base, bytes, stride, pos = start_offset % bytes]() mutable {
        const Addr addr = base + pos;
        pos += stride;
        if (pos >= bytes)
            pos %= bytes;
        return addr;
    };
}

std::function<Addr()>
chunkRotateChannel(Addr base, std::size_t bytes, std::size_t chunk_bytes,
                   std::size_t stride, std::size_t gpm,
                   std::size_t num_gpms)
{
    hdpat_fatal_if(chunk_bytes == 0 || stride == 0 || num_gpms == 0,
                   "bad chunk-rotate channel");
    const std::size_t num_chunks =
        std::max<std::size_t>(1, bytes / chunk_bytes);
    return [base, bytes, chunk_bytes, stride, num_chunks, num_gpms,
            chunk = gpm % num_chunks, pos = std::size_t(0)]() mutable {
        const std::size_t chunk_base = chunk * chunk_bytes;
        const Addr addr = base + (chunk_base + pos) % bytes;
        pos += stride;
        if (pos >= chunk_bytes) {
            pos = 0;
            chunk = (chunk + num_gpms) % num_chunks;
        }
        return addr;
    };
}

std::function<Addr()>
randomChannel(Addr base, std::size_t bytes, std::size_t align,
              std::shared_ptr<Rng> rng, unsigned dwell)
{
    hdpat_fatal_if(bytes < align || align == 0, "bad random channel");
    hdpat_fatal_if(dwell == 0, "dwell must be >= 1");
    const std::size_t slots = bytes / align;
    return [base, bytes, align, slots, dwell, rng = std::move(rng),
            cur = Addr(0), left = unsigned(0)]() mutable {
        if (left == 0) {
            cur = rng->uniformInt(slots) * align;
            left = dwell;
        }
        const Addr addr = base + cur;
        cur = (cur + 64) % bytes;
        --left;
        return addr;
    };
}

std::function<Addr()>
zipfChannel(Addr base, std::size_t bytes, double exponent,
            unsigned page_shift, std::shared_ptr<Rng> rng,
            unsigned dwell)
{
    hdpat_fatal_if(dwell == 0, "dwell must be >= 1");
    const std::size_t pages =
        std::max<std::size_t>(1, bytes >> page_shift);
    auto zipf = std::make_shared<ZipfSampler>(pages, exponent);
    const std::size_t page_bytes = std::size_t(1) << page_shift;
    return [base, page_bytes, zipf, dwell, rng = std::move(rng),
            cur = Addr(0), left = unsigned(0)]() mutable {
        if (left == 0) {
            const std::size_t page = zipf->sample(*rng);
            const std::size_t offset =
                rng->uniformInt(page_bytes / 64) * 64;
            cur = page * page_bytes + offset;
            left = dwell;
        }
        const Addr addr = base + cur;
        cur += 64;
        --left;
        return addr;
    };
}

std::function<Addr()>
hotRegionChannel(Addr base, std::size_t bytes, std::size_t region_bytes,
                 std::size_t stride, std::size_t ops_per_epoch,
                 std::size_t epoch_advance)
{
    hdpat_fatal_if(region_bytes == 0 || region_bytes > bytes,
                   "bad hot-region channel");
    hdpat_fatal_if(ops_per_epoch == 0, "hot region needs epoch length");
    return [base, bytes, region_bytes, stride, ops_per_epoch,
            epoch_advance, region_start = std::size_t(0),
            pos = std::size_t(0), ops = std::size_t(0)]() mutable {
        const Addr addr = base + (region_start + pos) % bytes;
        pos = (pos + stride) % region_bytes;
        if (++ops >= ops_per_epoch) {
            ops = 0;
            pos = 0;
            region_start = (region_start + epoch_advance) % bytes;
        }
        return addr;
    };
}

std::function<Addr()>
butterflyChannel(Addr base, std::size_t elems, std::size_t elem_bytes,
                 std::size_t slice_begin, std::size_t slice_elems,
                 std::vector<std::size_t> strides,
                 std::size_t ops_per_stage, std::size_t start_stage,
                 std::size_t index_step)
{
    hdpat_fatal_if(strides.empty(), "butterfly needs stage strides");
    hdpat_fatal_if(slice_elems == 0 || elems == 0, "empty butterfly");
    hdpat_fatal_if(index_step == 0, "butterfly index step must be > 0");
    return [base, elems, elem_bytes, slice_begin, slice_elems,
            strides = std::move(strides), ops_per_stage, index_step,
            i = std::size_t(0), stage = start_stage,
            ops = std::size_t(0)]() mutable {
        stage %= strides.size();
        const std::size_t self = slice_begin + (i % slice_elems);
        const std::size_t partner = (self ^ strides[stage]) % elems;
        i += index_step;
        if (++ops >= ops_per_stage) {
            ops = 0;
            stage = (stage + 1) % strides.size();
        }
        return base + partner * elem_bytes;
    };
}

std::function<Addr()>
stridedScatterChannel(Addr base, std::size_t bytes, std::size_t stride,
                      std::size_t start_offset, unsigned dwell)
{
    hdpat_fatal_if(bytes == 0 || stride == 0, "bad strided channel");
    hdpat_fatal_if(dwell == 0, "dwell must be >= 1");
    return [base, bytes, stride, dwell, pos = start_offset % bytes,
            sub = unsigned(0)]() mutable {
        const Addr addr = base + (pos + sub * 64) % bytes;
        if (++sub >= dwell) {
            sub = 0;
            // Offset by one cache line per wrap so successive passes
            // do not replay identical addresses forever.
            pos += stride;
            if (pos >= bytes)
                pos = (pos % bytes + 64) % bytes;
        }
        return addr;
    };
}

} // namespace hdpat
