#include "workloads/stream_cache.hh"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <string_view>

#include "mem/page_table.hh"
#include "sim/log.hh"
#include "workloads/suite.hh"

namespace hdpat
{

std::size_t
StreamKeyHash::operator()(const StreamKey &k) const
{
    std::size_t h = std::hash<std::string>{}(k.abbr);
    const auto mix = [&h](std::size_t v) {
        // splitmix-style combine; the exact constants only need to
        // spread the handful of live keys.
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(std::hash<double>{}(k.footprintScale));
    mix(k.opsPerGpm);
    mix(static_cast<std::size_t>(k.seed));
    mix(k.numGpms);
    mix(k.pageShift);
    mix(k.asidCount);
    return h;
}

std::size_t
StreamTable::totalOps() const
{
    return std::accumulate(perGpm_.begin(), perGpm_.end(),
                           std::size_t{0},
                           [](std::size_t acc, const auto &v) {
                               return acc + v.size();
                           });
}

WorkloadStreamCache &
WorkloadStreamCache::shared()
{
    static WorkloadStreamCache cache;
    return cache;
}

std::shared_ptr<const StreamTable>
WorkloadStreamCache::buildTable(const StreamKey &key)
{
    // Scratch page table with synthetic tile ids: the bump allocator
    // hands out the same virtual ranges as the real system's (same
    // page shift, same allocation order), and generators never read
    // the homes, so the addresses are bit-identical.
    GlobalPageTable pt(key.pageShift);
    std::vector<TileId> fake_tiles(key.numGpms);
    std::iota(fake_tiles.begin(), fake_tiles.end(), TileId{0});

    const std::unique_ptr<Workload> workload =
        makeWorkload(key.abbr, key.footprintScale);
    // Mirror System::loadWorkload exactly: one allocate() pass per
    // ASID. Per-ASID bump cursors give every tenant the same virtual
    // layout, but the workload's recorded handles come from the *last*
    // pass, so the replication must match for byte-identity.
    const std::uint32_t asids = std::max<std::uint32_t>(1, key.asidCount);
    for (std::uint32_t asid = 0; asid < asids; ++asid) {
        pt.setActiveAsid(static_cast<Asid>(asid));
        workload->allocate(pt, fake_tiles);
    }
    pt.setActiveAsid(0);

    std::vector<std::vector<Addr>> per_gpm(key.numGpms);
    for (std::size_t i = 0; i < key.numGpms; ++i) {
        const auto stream = workload->streamFor(i, key.numGpms,
                                                key.opsPerGpm, key.seed);
        per_gpm[i].reserve(key.opsPerGpm);
        while (const std::optional<Addr> addr = stream->next())
            per_gpm[i].push_back(*addr);
    }
    return std::make_shared<const StreamTable>(std::move(per_gpm));
}

std::shared_ptr<const StreamTable>
WorkloadStreamCache::get(const StreamKey &key)
{
    std::shared_ptr<Entry> entry;
    bool existed = false;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] =
            entries_.try_emplace(key, std::make_shared<Entry>());
        entry = it->second;
        entry->lastUse = ++useClock_;
        existed = !inserted;
    }

    // Build off the map mutex so distinct keys generate concurrently;
    // call_once publishes entry->table to every waiter.
    std::call_once(entry->built,
                   [&] { entry->table = buildTable(key); });

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (existed)
            ++hits_;
        else
            ++builds_;
        evictIfNeeded();
    }
    return entry->table;
}

void
WorkloadStreamCache::evictIfNeeded()
{
    // Caller holds mutex_. Evict least-recently-used entries; systems
    // still replaying an evicted table keep it alive via shared_ptr.
    while (entries_.size() > maxEntries_) {
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->second->lastUse < victim->second->lastUse)
                victim = it;
        }
        entries_.erase(victim);
    }
}

std::uint64_t
WorkloadStreamCache::builds() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return builds_;
}

std::uint64_t
WorkloadStreamCache::hits() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
WorkloadStreamCache::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
WorkloadStreamCache::clearForTest()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    builds_ = 0;
    hits_ = 0;
    useClock_ = 0;
}

bool
streamCacheEnabled()
{
    const char *env = std::getenv("HDPAT_STREAM_CACHE");
    if (!env)
        return true;
    const std::string_view v(env);
    return !(v == "0" || v == "off");
}

} // namespace hdpat
