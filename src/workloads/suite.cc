#include "workloads/suite.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace hdpat
{

namespace
{

constexpr std::size_t kKiB = 1024;
constexpr std::size_t kMiB = 1024 * kKiB;

std::size_t
scaled(std::size_t bytes, double scale)
{
    const double v = static_cast<double>(bytes) * scale;
    return std::max<std::size_t>(64 * kKiB, static_cast<std::size_t>(v));
}

std::shared_ptr<Rng>
gpmRng(std::uint64_t seed, std::size_t gpm)
{
    return std::make_shared<Rng>(seed ^
                                 (0x9e3779b97f4a7c15ull * (gpm + 1)));
}

} // namespace

SliceView
sliceOf(const BufferHandle &handle, std::size_t gpm, std::size_t num_gpms)
{
    hdpat_panic_if(num_gpms == 0, "sliceOf with zero GPMs");
    const std::size_t pages = handle.numPages;
    const std::size_t per = pages / num_gpms;
    const std::size_t rem = pages % num_gpms;
    const std::size_t start = gpm * per + std::min(gpm, rem);
    const std::size_t count = per + (gpm < rem ? 1 : 0);
    SliceView view;
    view.base = handle.baseVa + start * handle.pageBytes;
    view.bytes = count * handle.pageBytes;
    return view;
}


/**
 * Slice for a GPM, falling back to the whole buffer when the slice is
 * empty (huge-page configs can leave fewer pages than GPMs).
 */
SliceView
safeSlice(const BufferHandle &handle, std::size_t gpm, std::size_t n)
{
    SliceView view = sliceOf(handle, gpm, n);
    if (view.bytes == 0) {
        view.base = handle.baseVa;
        view.bytes = handle.numPages * handle.pageBytes;
    }
    return view;
}

// =====================================================================
// Streaming family: AES, RELU, FIR, SC, I2C, KM
// =====================================================================

/**
 * AES: iterative streaming over the state buffer plus random probes of
 * the shared T-box lookup table. The table is tiny and TLB-resident
 * after first touch, so every page triggers a single IOMMU request
 * (observation O3).
 */
class AesWorkload : public Workload
{
  public:
    explicit AesWorkload(double scale)
        : Workload({"AES", "Advanced Encryption Standard", 4096,
                    scaled(8 * kMiB, scale), 0.25, 64})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        state_ = pt.allocate(info_.footprintBytes, gpms);
        ttable_ = pt.allocate(256 * kKiB, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t seed) const override
    {
        const SliceView slice = safeSlice(state_, gpm, n);
        auto rng = gpmRng(seed, gpm);
        std::vector<Channel> ch;
        ch.push_back({seqChannel(slice.base, slice.bytes, 64), 3});
        ch.push_back({randomChannel(ttable_.baseVa,
                                    ttable_.numPages * ttable_.pageBytes,
                                    64, rng),
                      1});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle state_;
    BufferHandle ttable_;
};

/**
 * RELU: one streaming pass over huge in/out buffers. The access window
 * is shifted by 1/8 slice relative to the page homes (thread blocks do
 * not align perfectly with data blocks), so ~12% of pages are remote
 * and each triggers exactly one IOMMU request (O3).
 */
class ReluWorkload : public Workload
{
  public:
    explicit ReluWorkload(double scale)
        : Workload({"RELU", "Rectified Linear Unit", 1310720,
                    scaled(1280 * kMiB, scale), 4.0, 512})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        in_ = pt.allocate(info_.footprintBytes / 2, gpms);
        out_ = pt.allocate(info_.footprintBytes / 2, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t) const override
    {
        // Stride of 1 KiB samples four lines per page; the access
        // window ends 1/8 past the slice boundary, so ~12% of the
        // touched pages are remote and each is translated exactly once
        // (the single-IOMMU-request-per-page behaviour of O3).
        constexpr std::size_t kStride = 1024;
        auto window = [&](const BufferHandle &buf) {
            const std::size_t bytes = buf.numPages * buf.pageBytes;
            const std::size_t slice = bytes / n;
            const std::size_t coverage = (max_ops / 2) * kStride;
            const std::size_t end = (gpm + 1) * slice;
            const std::size_t start =
                end > coverage * 7 / 8 ? end - coverage * 7 / 8 : 0;
            return seqChannel(buf.baseVa, bytes, kStride, start);
        };
        std::vector<Channel> ch;
        ch.push_back({window(in_), 1});
        ch.push_back({window(out_), 1});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle in_;
    BufferHandle out_;
};

/**
 * FIR: batches rotate across GPMs, so each GPM streams page-sequential
 * regions homed elsewhere (small stride, iterative) -- the
 * prefetch-friendly pattern behind FIR's Fig 18 gains -- plus a hot
 * shared coefficient page.
 */
class FirWorkload : public Workload
{
  public:
    explicit FirWorkload(double scale)
        : Workload({"FIR", "Finite Impulse Response Filter", 65536,
                    scaled(256 * kMiB, scale), 2.0, 256})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        in_ = pt.allocate(info_.footprintBytes * 3 / 4, gpms);
        out_ = pt.allocate(info_.footprintBytes / 4, gpms);
        coeff_ = pt.allocate(64 * kKiB, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t) const override
    {
        const SliceView out = safeSlice(out_, gpm, n);
        std::vector<Channel> ch;
        ch.push_back({chunkRotateChannel(in_.baseVa,
                                         in_.numPages * in_.pageBytes,
                                         64 * kKiB, 64, gpm, n),
                      4});
        ch.push_back({hotRegionChannel(coeff_.baseVa,
                                       coeff_.numPages * coeff_.pageBytes,
                                       4 * kKiB, 64, 1u << 20, 0),
                      1});
        ch.push_back({seqChannel(out.base, out.bytes, 64), 2});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle in_;
    BufferHandle out_;
    BufferHandle coeff_;
};

/**
 * SC: simple convolution. Chunk-rotated input tiles plus an
 * overlapping sliding window (adjacent output pixels re-read input
 * rows) and local output writes.
 */
class ScWorkload : public Workload
{
  public:
    explicit ScWorkload(double scale)
        : Workload({"SC", "Simple Convolution", 262465,
                    scaled(256 * kMiB, scale), 1.5, 256})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        in_ = pt.allocate(info_.footprintBytes / 2, gpms);
        out_ = pt.allocate(info_.footprintBytes / 2, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t) const override
    {
        const SliceView out = safeSlice(out_, gpm, n);
        const std::size_t in_bytes = in_.numPages * in_.pageBytes;
        std::vector<Channel> ch;
        ch.push_back({chunkRotateChannel(in_.baseVa, in_bytes, 64 * kKiB,
                                         64, gpm, n),
                      3});
        ch.push_back({hotRegionChannel(in_.baseVa, in_bytes, 64 * kKiB,
                                       64, 2048, 48 * kKiB),
                      1});
        ch.push_back({seqChannel(out.base, out.bytes, 64), 2});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle in_;
    BufferHandle out_;
};

/**
 * I2C: image-to-column conversion. Input patches overlap horizontally
 * (windows re-read recently translated pages) and batches rotate
 * across GPMs, yielding the strong spatial locality behind its 1.84x
 * prefetch gain.
 */
class I2cWorkload : public Workload
{
  public:
    explicit I2cWorkload(double scale)
        : Workload({"I2C", "Image to Column Conversion", 16384,
                    scaled(32 * kMiB, scale), 2.0, 256})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        image_ = pt.allocate(info_.footprintBytes / 2, gpms);
        cols_ = pt.allocate(info_.footprintBytes / 2, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t) const override
    {
        const SliceView cols = safeSlice(cols_, gpm, n);
        const std::size_t img_bytes = image_.numPages * image_.pageBytes;
        std::vector<Channel> ch;
        ch.push_back({chunkRotateChannel(image_.baseVa, img_bytes,
                                         32 * kKiB, 64, gpm, n),
                      3});
        ch.push_back({hotRegionChannel(image_.baseVa, img_bytes,
                                       64 * kKiB, 64, 2048, 16 * kKiB),
                      2});
        ch.push_back({seqChannel(cols.base, cols.bytes, 64), 2});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle image_;
    BufferHandle cols_;
};

/**
 * KM: KMeans. Streams local points while looping a small remote-hot
 * centroid table with a tiny stride every iteration -- the "iterative
 * access with a small stride" the paper credits for KM's prefetch and
 * redirection gains.
 */
class KmWorkload : public Workload
{
  public:
    explicit KmWorkload(double scale)
        : Workload({"KM", "KMeans", 32768, scaled(40 * kMiB, scale), 0.75, 128})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        points_ = pt.allocate(info_.footprintBytes, gpms);
        centroids_ = pt.allocate(256 * kKiB, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t) const override
    {
        const SliceView pts = safeSlice(points_, gpm, n);
        std::vector<Channel> ch;
        ch.push_back({seqChannel(pts.base, pts.bytes, 64), 3});
        ch.push_back({hotRegionChannel(
                          centroids_.baseVa,
                          centroids_.numPages * centroids_.pageBytes,
                          centroids_.numPages * centroids_.pageBytes, 64,
                          1u << 20, 0),
                      2});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle points_;
    BufferHandle centroids_;
};

// =====================================================================
// Butterfly family: BT, FWT, FFT
// =====================================================================

/** Shared butterfly-stride schedule builders. */
namespace butterfly
{

/**
 * Bitonic sort: stage k has substages k-1..0, so small strides
 * dominate the schedule and most partners stay inside the local slice
 * (BT's mostly-local behaviour in the paper).
 */
std::vector<std::size_t>
bitonicStrides(std::size_t elems)
{
    std::vector<std::size_t> strides;
    const auto log_n = static_cast<std::size_t>(std::log2(elems));
    for (std::size_t k = 1; k <= log_n; ++k) {
        for (std::size_t j = k; j-- > 0;)
            strides.push_back(std::size_t(1) << j);
    }
    return strides;
}

/** Walsh/FFT passes: one stride per pass, uniform across sizes. */
std::vector<std::size_t>
passStrides(std::size_t elems)
{
    std::vector<std::size_t> strides;
    for (std::size_t s = 1; s < elems; s <<= 1)
        strides.push_back(s);
    return strides;
}

} // namespace butterfly

/** BT: bitonic sort (16 MB, mostly-local partners, repeats). */
class BtWorkload : public Workload
{
  public:
    explicit BtWorkload(double scale)
        : Workload({"BT", "Bitonic Sort", 16384,
                    scaled(16 * kMiB, scale), 2.0, 256})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        data_ = pt.allocate(info_.footprintBytes, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t) const override
    {
        const std::size_t elems =
            data_.numPages * data_.pageBytes / sizeof(std::uint32_t);
        const std::size_t slice_elems =
            std::max<std::size_t>(1, elems / n);
        const SliceView slice = safeSlice(data_, gpm, n);
        std::vector<Channel> ch;
        ch.push_back({seqChannel(slice.base, slice.bytes, 64), 1});
        ch.push_back({butterflyChannel(data_.baseVa, elems, 4,
                                       gpm * slice_elems, slice_elems,
                                       butterfly::bitonicStrides(elems),
                                       256),
                      1});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle data_;
};

/** FWT: Walsh transform (64 MB, uniform stride mix, repeats -- O3). */
class FwtWorkload : public Workload
{
  public:
    explicit FwtWorkload(double scale)
        : Workload({"FWT", "Fast Walsh Transform", 16384,
                    scaled(64 * kMiB, scale), 2.0, 256})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        data_ = pt.allocate(info_.footprintBytes, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t) const override
    {
        const std::size_t elems =
            data_.numPages * data_.pageBytes / sizeof(std::uint32_t);
        const std::size_t slice_elems =
            std::max<std::size_t>(1, elems / n);
        const SliceView slice = safeSlice(data_, gpm, n);
        std::vector<Channel> ch;
        ch.push_back({seqChannel(slice.base, slice.bytes, 64), 1});
        ch.push_back({butterflyChannel(data_.baseVa, elems, 4,
                                       gpm * slice_elems, slice_elems,
                                       butterfly::passStrides(elems),
                                       512),
                      2});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle data_;
};

/** FFT: butterflies over complex data plus a hot twiddle table. */
class FftWorkload : public Workload
{
  public:
    explicit FftWorkload(double scale)
        : Workload({"FFT", "Fast Fourier Transform", 32768,
                    scaled(256 * kMiB, scale), 1.5, 256})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        data_ = pt.allocate(info_.footprintBytes, gpms);
        twiddle_ = pt.allocate(1 * kMiB, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t) const override
    {
        const std::size_t elems =
            data_.numPages * data_.pageBytes / 8; // complex<float>
        const std::size_t slice_elems =
            std::max<std::size_t>(1, elems / n);
        const SliceView slice = safeSlice(data_, gpm, n);
        std::vector<Channel> ch;
        ch.push_back({seqChannel(slice.base, slice.bytes, 64), 1});
        // Bit-reversal scheduling scatters the work-item order, so
        // partner pages are far less sequential than in FWT.
        ch.push_back({butterflyChannel(data_.baseVa, elems, 8,
                                       gpm * slice_elems, slice_elems,
                                       butterfly::passStrides(elems),
                                       256, /*start_stage=*/gpm,
                                       /*index_step=*/127),
                      2});
        ch.push_back(
            {hotRegionChannel(twiddle_.baseVa,
                              twiddle_.numPages * twiddle_.pageBytes,
                              twiddle_.numPages * twiddle_.pageBytes, 64,
                              1u << 20, 0),
             1});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle data_;
    BufferHandle twiddle_;
};

// =====================================================================
// Linear algebra family: MM, MT, SPMV
// =====================================================================

/**
 * MM: tiled GEMM. A and C stream locally; B tiles rotate across GPMs
 * and are re-read by every GPM (cross-GPM reuse + within-tile
 * sequential pages).
 */
class MmWorkload : public Workload
{
  public:
    explicit MmWorkload(double scale)
        : Workload({"MM", "Matrix Multiplication", 16384,
                    scaled(256 * kMiB, scale), 1.0, 128})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        a_ = pt.allocate(info_.footprintBytes * 3 / 8, gpms);
        b_ = pt.allocate(info_.footprintBytes * 3 / 8, gpms);
        c_ = pt.allocate(info_.footprintBytes / 4, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t) const override
    {
        const SliceView a = safeSlice(a_, gpm, n);
        const SliceView c = safeSlice(c_, gpm, n);
        std::vector<Channel> ch;
        ch.push_back({seqChannel(a.base, a.bytes, 64), 2});
        ch.push_back({chunkRotateChannel(b_.baseVa,
                                         b_.numPages * b_.pageBytes,
                                         128 * kKiB, 64, gpm, n),
                      3});
        ch.push_back({seqChannel(c.base, c.bytes, 64), 1});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle a_;
    BufferHandle b_;
    BufferHandle c_;
};

/**
 * MT: matrix transpose. Local row reads; column-major writes touch a
 * new page on every access and cycle the whole output buffer before
 * any reuse (the long-reuse-distance thrash case of the ablation).
 */
class MtWorkload : public Workload
{
  public:
    explicit MtWorkload(double scale)
        : Workload({"MT", "Matrix Transpose", 524288,
                    scaled(2048 * kMiB, scale), 4.0, 512})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        in_ = pt.allocate(info_.footprintBytes / 2, gpms);
        out_ = pt.allocate(info_.footprintBytes / 2, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t) const override
    {
        const SliceView in = safeSlice(in_, gpm, n);
        const std::size_t out_bytes = out_.numPages * out_.pageBytes;
        // Square float matrix: row stride = sqrt(bytes/4) * 4 bytes.
        const auto dim = static_cast<std::size_t>(
            std::sqrt(static_cast<double>(out_bytes) / 4.0));
        const std::size_t row_bytes = std::max<std::size_t>(
            4 * kKiB, dim * 4);
        std::vector<Channel> ch;
        ch.push_back({seqChannel(in.base, in.bytes, 64), 1});
        // Each GPM transposes its own row block: its column-major
        // writes are offset by (dim / n) rows. Offsets are page
        // aligned (a write burst stays inside one output page), so
        // sequential prefetch buys MT almost nothing -- the <10%
        // behaviour of Fig 18.
        const std::size_t row_block_bytes =
            (std::max<std::size_t>(64, dim * 4 / n) * gpm) &
            ~std::size_t(4095);
        ch.push_back({stridedScatterChannel(out_.baseVa, out_bytes,
                                            row_bytes, row_block_bytes,
                                            /*dwell=*/8),
                      1});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle in_;
    BufferHandle out_;
};

/**
 * SPMV: CSR streams locally; the x-vector gather is a mildly skewed
 * random page access across the whole wafer -- the IOMMU-swamping
 * pattern behind Figs 3 and 4.
 */
class SpmvWorkload : public Workload
{
  public:
    explicit SpmvWorkload(double scale)
        : Workload({"SPMV", "Sparse Matrix-Vector Multiplication",
                    81920, scaled(120 * kMiB, scale), 1.5, 256})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        vals_ = pt.allocate(info_.footprintBytes * 8 / 15, gpms);
        colidx_ = pt.allocate(info_.footprintBytes * 4 / 15, gpms);
        x_ = pt.allocate(info_.footprintBytes * 2 / 15, gpms);
        y_ = pt.allocate(info_.footprintBytes / 15, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t seed) const override
    {
        const SliceView vals = safeSlice(vals_, gpm, n);
        const SliceView cols = safeSlice(colidx_, gpm, n);
        const SliceView y = safeSlice(y_, gpm, n);
        auto rng = gpmRng(seed, gpm);
        std::vector<Channel> ch;
        ch.push_back({seqChannel(vals.base, vals.bytes, 64), 2});
        ch.push_back({seqChannel(cols.base, cols.bytes, 64), 1});
        ch.push_back({zipfChannel(x_.baseVa,
                                  x_.numPages * x_.pageBytes, 0.6,
                                  12, rng, /*dwell=*/2),
                      2});
        ch.push_back({seqChannel(y.base, y.bytes, 64), 1});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle vals_;
    BufferHandle colidx_;
    BufferHandle x_;
    BufferHandle y_;
};

// =====================================================================
// Graph / iterative family: PR, FWS
// =====================================================================

/**
 * PR: PageRank. Power-law gather of neighbour ranks: hub pages are
 * extremely hot across every GPM, which is why peer caching serves 65%
 * of PR's translations in the paper.
 */
class PrWorkload : public Workload
{
  public:
    explicit PrWorkload(double scale)
        : Workload({"PR", "PageRank", 524288, scaled(14 * kMiB, scale), 1.5, 256})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        // One rank array; the gather spans the whole footprint so the
        // hot set exceeds a single GPM's L2 TLB reach and translation
        // traffic persists at steady state.
        ranks_ = pt.allocate(info_.footprintBytes, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t seed) const override
    {
        const SliceView own = safeSlice(ranks_, gpm, n);
        auto rng = gpmRng(seed, gpm);
        std::vector<Channel> ch;
        ch.push_back({seqChannel(own.base, own.bytes, 64), 1});
        ch.push_back({zipfChannel(ranks_.baseVa,
                                  ranks_.numPages * ranks_.pageBytes,
                                  0.9, 12, rng, /*dwell=*/3),
                      3});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle ranks_;
};

/**
 * FWS: Floyd-Warshall. Every GPM re-reads the pivot row k (a hot
 * remote region that advances each iteration) and scans the pivot
 * column (large stride), alongside local block updates.
 */
class FwsWorkload : public Workload
{
  public:
    explicit FwsWorkload(double scale)
        : Workload({"FWS", "Floyd-Warshall Shortest Paths", 65536,
                    scaled(72 * kMiB, scale), 1.0, 128})
    {
    }

    void
    allocate(GlobalPageTable &pt, std::span<const TileId> gpms) override
    {
        dist_ = pt.allocate(info_.footprintBytes, gpms);
    }

    std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm, std::size_t n, std::size_t max_ops,
              std::uint64_t) const override
    {
        const SliceView block = safeSlice(dist_, gpm, n);
        const std::size_t bytes = dist_.numPages * dist_.pageBytes;
        const auto dim = static_cast<std::size_t>(
            std::sqrt(static_cast<double>(bytes) / 4.0));
        const std::size_t row_bytes =
            std::max<std::size_t>(4 * kKiB, dim * 4);
        std::vector<Channel> ch;
        ch.push_back({seqChannel(block.base, block.bytes, 64), 2});
        ch.push_back({hotRegionChannel(dist_.baseVa, bytes, row_bytes,
                                       64, 512, row_bytes),
                      2});
        // Column-k elements inside this GPM's row block are local;
        // scan them with a row stride restricted to the block.
        ch.push_back({stridedScatterChannel(block.base, block.bytes,
                                            row_bytes, 0),
                      1});
        return std::make_unique<InterleavedStream>(std::move(ch),
                                                   max_ops);
    }

  private:
    BufferHandle dist_;
};

// =====================================================================
// Factory
// =====================================================================

const std::vector<WorkloadInfo> &
workloadTable()
{
    static const std::vector<WorkloadInfo> table = [] {
        std::vector<WorkloadInfo> t;
        const char *abbrs[] = {"AES", "BT", "FWT", "FFT", "FIR",
                               "FWS", "I2C", "KM", "MM", "MT",
                               "PR", "RELU", "SC", "SPMV"};
        for (const char *abbr : abbrs)
            t.push_back(makeWorkload(abbr)->info());
        return t;
    }();
    return table;
}

std::vector<std::string>
workloadAbbrs()
{
    std::vector<std::string> out;
    for (const auto &info : workloadTable())
        out.push_back(info.abbr);
    return out;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &abbr, double footprint_scale)
{
    if (abbr == "AES")
        return std::make_unique<AesWorkload>(footprint_scale);
    if (abbr == "BT")
        return std::make_unique<BtWorkload>(footprint_scale);
    if (abbr == "FWT")
        return std::make_unique<FwtWorkload>(footprint_scale);
    if (abbr == "FFT")
        return std::make_unique<FftWorkload>(footprint_scale);
    if (abbr == "FIR")
        return std::make_unique<FirWorkload>(footprint_scale);
    if (abbr == "FWS")
        return std::make_unique<FwsWorkload>(footprint_scale);
    if (abbr == "I2C")
        return std::make_unique<I2cWorkload>(footprint_scale);
    if (abbr == "KM")
        return std::make_unique<KmWorkload>(footprint_scale);
    if (abbr == "MM")
        return std::make_unique<MmWorkload>(footprint_scale);
    if (abbr == "MT")
        return std::make_unique<MtWorkload>(footprint_scale);
    if (abbr == "PR")
        return std::make_unique<PrWorkload>(footprint_scale);
    if (abbr == "RELU")
        return std::make_unique<ReluWorkload>(footprint_scale);
    if (abbr == "SC")
        return std::make_unique<ScWorkload>(footprint_scale);
    if (abbr == "SPMV")
        return std::make_unique<SpmvWorkload>(footprint_scale);
    hdpat_fatal("unknown workload: " << abbr);
}

} // namespace hdpat
