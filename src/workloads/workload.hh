/**
 * @file
 * Workload framework: Table II benchmark descriptors, the Workload base
 * class, and the channel-combinator machinery used to compose each
 * benchmark's address stream.
 *
 * A workload allocates its buffers (block-partitioned across GPMs, as
 * the paper's driver model prescribes in §II-A) and then produces one
 * deterministic AddressStream per GPM. Streams are built from weighted
 * "channels", each a small generator modelling one access pattern of
 * the kernel (sequential slice walk, chunk-rotated remote stream,
 * random gather, hot-region loop, butterfly partner, large-stride
 * scatter).
 */

#ifndef HDPAT_WORKLOADS_WORKLOAD_HH
#define HDPAT_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mem/page_table.hh"
#include "sim/rng.hh"
#include "sim/types.hh"
#include "workloads/address_stream.hh"

namespace hdpat
{

/** Static description of one benchmark (Table II row). */
struct WorkloadInfo
{
    std::string abbr;
    std::string name;
    std::size_t workgroups = 0;
    std::size_t footprintBytes = 0;
    /**
     * Aggregate memory operations a GPM issues per cycle -- the
     * compute-intensity knob (crypto/FMA-heavy kernels issue memory
     * ops slowly; streaming kernels issue at full width). 0 = use the
     * SystemConfig default.
     */
    double opsPerCycle = 0.0;
    /** Outstanding-op window override; 0 = SystemConfig default. */
    int maxOutstanding = 0;
};

/**
 * Base class for the 14 benchmark generators.
 *
 * Lifecycle: construct -> allocate(pt, gpms) once -> streamFor(...)
 * once per GPM. A Workload instance belongs to a single simulated run.
 */
class Workload
{
  public:
    explicit Workload(WorkloadInfo info) : info_(std::move(info)) {}
    virtual ~Workload() = default;

    const WorkloadInfo &info() const { return info_; }

    /** Allocate this workload's buffers into @p pt. */
    virtual void allocate(GlobalPageTable &pt,
                          std::span<const TileId> gpms) = 0;

    /**
     * Build GPM @p gpm_index's address stream.
     *
     * @param gpm_index Index into the GPM list given to allocate().
     * @param num_gpms Total GPM count.
     * @param max_ops Stream length (memory operations).
     * @param seed Base RNG seed; implementations mix in gpm_index.
     */
    virtual std::unique_ptr<AddressStream>
    streamFor(std::size_t gpm_index, std::size_t num_gpms,
              std::size_t max_ops, std::uint64_t seed) const = 0;

  protected:
    WorkloadInfo info_;
};

/** One weighted generator inside an InterleavedStream. */
struct Channel
{
    /** Produces the channel's next address. */
    std::function<Addr()> gen;
    /** Relative frequency (ops dealt round-robin by weight). */
    int weight = 1;
};

/**
 * Deterministic weighted interleave of channels, capped at max_ops.
 * Channels are serviced in a repeating schedule proportional to their
 * weights, which keeps streams reproducible without RNG in the
 * scheduler itself.
 */
class InterleavedStream : public AddressStream
{
  public:
    InterleavedStream(std::vector<Channel> channels, std::size_t max_ops);

    std::optional<Addr> next() override;

  private:
    std::vector<Channel> channels_;
    std::vector<int> credits_;
    std::size_t cursor_ = 0;
    std::size_t remainingOps_;
};

// ---------------------------------------------------------------------
// Channel factories. Each returns a stateful generator closure.
// ---------------------------------------------------------------------

/**
 * Sequential walk of [base, base+bytes) with @p stride, wrapping
 * around (models iterative passes over a region).
 */
std::function<Addr()> seqChannel(Addr base, std::size_t bytes,
                                 std::size_t stride,
                                 std::size_t start_offset = 0);

/**
 * Workgroup-style chunk rotation: GPM @p gpm of @p num_gpms walks
 * chunks gpm, gpm+N, gpm+2N, ... of the buffer sequentially (stride
 * within a chunk), wrapping. Models round-robin tile/batch assignment,
 * which turns a block-partitioned buffer into a mostly-remote but
 * page-sequential stream -- the prefetch-friendly pattern of O4.
 */
std::function<Addr()> chunkRotateChannel(Addr base, std::size_t bytes,
                                         std::size_t chunk_bytes,
                                         std::size_t stride,
                                         std::size_t gpm,
                                         std::size_t num_gpms);

/**
 * Uniform random aligned accesses inside [base, base+bytes). With
 * @p dwell > 1, each sampled location is revisited that many times on
 * consecutive lines before resampling (hardware access coalescing).
 */
std::function<Addr()> randomChannel(Addr base, std::size_t bytes,
                                    std::size_t align,
                                    std::shared_ptr<Rng> rng,
                                    unsigned dwell = 1);

/**
 * Zipf-popular page gather over [base, base+bytes): power-law page
 * popularity with uniform offset inside the page (PageRank hubs,
 * SPMV's x vector under skewed column distributions). @p dwell
 * consecutive lines are touched per sampled page.
 */
std::function<Addr()> zipfChannel(Addr base, std::size_t bytes,
                                  double exponent, unsigned page_shift,
                                  std::shared_ptr<Rng> rng,
                                  unsigned dwell = 1);

/**
 * Hot-region loop with epochs: walks a @p region_bytes window
 * sequentially; after @p ops_per_epoch operations the window advances
 * by @p epoch_advance (Floyd-Warshall's row k, KMeans centroids with
 * epoch_advance = 0).
 */
std::function<Addr()> hotRegionChannel(Addr base, std::size_t bytes,
                                       std::size_t region_bytes,
                                       std::size_t stride,
                                       std::size_t ops_per_epoch,
                                       std::size_t epoch_advance);

/**
 * Butterfly partner access: element index walks the GPM's slice
 * sequentially; the generated address is the XOR-partner at the
 * current stage stride. Stage strides cycle through the schedule,
 * dwelling @p ops_per_stage on each (bitonic sort / FWT / FFT).
 */
std::function<Addr()> butterflyChannel(Addr base, std::size_t elems,
                                       std::size_t elem_bytes,
                                       std::size_t slice_begin,
                                       std::size_t slice_elems,
                                       std::vector<std::size_t> strides,
                                       std::size_t ops_per_stage,
                                       std::size_t start_stage = 0,
                                       std::size_t index_step = 1);

/**
 * Large-stride scatter: walks base + (k * stride) % bytes for
 * k = 0, 1, 2, ... with @p dwell coalesced line accesses at each
 * location (matrix-transpose column writes: a fresh page every few
 * accesses, reuse distance of a full pass).
 */
std::function<Addr()> stridedScatterChannel(Addr base, std::size_t bytes,
                                            std::size_t stride,
                                            std::size_t start_offset = 0,
                                            unsigned dwell = 1);

} // namespace hdpat

#endif // HDPAT_WORKLOADS_WORKLOAD_HH
