/**
 * @file
 * The 14-benchmark suite of Table II: factory and metadata. Each
 * generator is a synthetic address-stream model of the corresponding
 * kernel, constructed to match the paper's published translation-level
 * characteristics (see DESIGN.md §5 for the per-benchmark mapping).
 */

#ifndef HDPAT_WORKLOADS_SUITE_HH
#define HDPAT_WORKLOADS_SUITE_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace hdpat
{

/** Table II rows, in paper order. */
const std::vector<WorkloadInfo> &workloadTable();

/** Benchmark abbreviations, in paper order. */
std::vector<std::string> workloadAbbrs();

/**
 * Instantiate a benchmark generator.
 *
 * @param abbr Table II abbreviation (e.g. "SPMV").
 * @param footprint_scale Multiplier on the Table II memory footprint
 *                        (Fig 13 size sweep; default 1.0).
 */
std::unique_ptr<Workload> makeWorkload(const std::string &abbr,
                                       double footprint_scale = 1.0);

/**
 * The slice of @p handle assigned to GPM @p gpm under the contiguous
 * block partitioning of GlobalPageTable::allocate().
 */
struct SliceView
{
    Addr base = 0;
    std::size_t bytes = 0;
};
SliceView sliceOf(const BufferHandle &handle, std::size_t gpm,
                  std::size_t num_gpms);

} // namespace hdpat

#endif // HDPAT_WORKLOADS_SUITE_HH
