/**
 * @file
 * Memoized workload address streams.
 *
 * A fig-grid sweep runs the same (workload, footprintScale, ops, seed)
 * stream against several policies and configs, and the generators are
 * deterministic: the virtual addresses depend only on the allocation
 * order (a bump allocator) and the per-GPM RNG seeds -- never on which
 * tile a page is homed to. So the streams can be generated once,
 * materialized into immutable per-GPM address tables, and replayed for
 * every grid point that shares the key.
 *
 * The cache is shared across runMany/runSuiteGrid workers: the first
 * caller of a key builds the table (under a per-entry once_flag, off
 * the map mutex so unrelated keys build concurrently); later callers
 * -- and all replay reads -- are lock-free on the immutable table.
 *
 * Tables are built against a scratch GlobalPageTable with synthetic
 * tile ids, which is sound because workload allocate() implementations
 * use the tile span only as page-table homes (affecting Pte.home, not
 * the returned virtual ranges). The equivalence test in
 * tests/test_stream_cache.cc asserts replay == direct generation for
 * the whole suite.
 */

#ifndef HDPAT_WORKLOADS_STREAM_CACHE_HH
#define HDPAT_WORKLOADS_STREAM_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "workloads/address_stream.hh"

namespace hdpat
{

/** Everything the generated addresses depend on. */
struct StreamKey
{
    std::string abbr;
    double footprintScale = 1.0;
    std::size_t opsPerGpm = 0;
    std::uint64_t seed = 0;
    std::size_t numGpms = 0;
    unsigned pageShift = 12;
    /**
     * Tenant dimension: the system allocates the workload once per
     * ASID, so the workload object's final buffer handles (and thus
     * the generated streams) are a function of the allocation *count*.
     * The tenancy Poisson rates (switch/churn) act at run time, after
     * generation, and deliberately stay out of the key.
     */
    std::uint32_t asidCount = 1;

    bool operator==(const StreamKey &) const = default;
};

struct StreamKeyHash
{
    std::size_t operator()(const StreamKey &k) const;
};

/** Immutable per-GPM address tables for one StreamKey. */
class StreamTable
{
  public:
    explicit StreamTable(std::vector<std::vector<Addr>> per_gpm)
        : perGpm_(std::move(per_gpm))
    {
    }

    std::size_t numGpms() const { return perGpm_.size(); }
    const std::vector<Addr> &gpm(std::size_t i) const
    {
        return perGpm_[i];
    }
    /** Total addresses across all GPMs (statistics). */
    std::size_t totalOps() const;

  private:
    std::vector<std::vector<Addr>> perGpm_;
};

/**
 * AddressStream that replays one GPM's column of a cached table.
 * Yields exactly the table's addresses, then nullopt -- identical
 * observable behavior to the lazy generator it memoizes.
 */
class ReplayStream : public AddressStream
{
  public:
    ReplayStream(std::shared_ptr<const StreamTable> table,
                 std::size_t gpm_index)
        : table_(std::move(table)), gpmIndex_(gpm_index)
    {
    }

    std::optional<Addr> next() override
    {
        const std::vector<Addr> &addrs = table_->gpm(gpmIndex_);
        if (cursor_ >= addrs.size())
            return std::nullopt;
        return addrs[cursor_++];
    }

  private:
    std::shared_ptr<const StreamTable> table_;
    std::size_t gpmIndex_;
    std::size_t cursor_ = 0;
};

/**
 * Process-wide keyed cache of StreamTables.
 *
 * get() returns a shared const table, building it on first use. A
 * small LRU bound keeps a pathological sweep (many distinct keys) from
 * pinning every stream it ever generated; entries still referenced by
 * running systems stay alive through their shared_ptr.
 */
class WorkloadStreamCache
{
  public:
    explicit WorkloadStreamCache(std::size_t max_entries = 32)
        : maxEntries_(max_entries)
    {
    }

    /** The cache shared by all runners in this process. */
    static WorkloadStreamCache &shared();

    /** Fetch or build the table for @p key. */
    std::shared_ptr<const StreamTable> get(const StreamKey &key);

    /** Tables built so far (misses; statistics/tests). */
    std::uint64_t builds() const;
    /** get() calls served from an existing table. */
    std::uint64_t hits() const;
    /** Entries currently resident. */
    std::size_t size() const;

    /** Drop all entries (tests). Running replays keep their tables. */
    void clearForTest();

  private:
    struct Entry
    {
        std::once_flag built;
        std::shared_ptr<const StreamTable> table;
        std::uint64_t lastUse = 0;
    };

    /** Generate the table for @p key (the once_flag body). */
    static std::shared_ptr<const StreamTable>
    buildTable(const StreamKey &key);

    void evictIfNeeded();

    mutable std::mutex mutex_;
    std::unordered_map<StreamKey, std::shared_ptr<Entry>, StreamKeyHash>
        entries_;
    std::size_t maxEntries_;
    std::uint64_t useClock_ = 0;
    std::uint64_t builds_ = 0;
    std::uint64_t hits_ = 0;
};

/**
 * Stream-cache kill switch: HDPAT_STREAM_CACHE=0 (or "off") makes the
 * runner regenerate streams per run, the pre-cache behavior. Read per
 * call so harnesses can flip it between runs.
 */
bool streamCacheEnabled();

} // namespace hdpat

#endif // HDPAT_WORKLOADS_STREAM_CACHE_HH
