# Empty dependencies file for fig02_headroom.
# This may be replaced when dependencies are built.
