file(REMOVE_RECURSE
  "CMakeFiles/fig02_headroom.dir/bench_common.cc.o"
  "CMakeFiles/fig02_headroom.dir/bench_common.cc.o.d"
  "CMakeFiles/fig02_headroom.dir/fig02_headroom.cc.o"
  "CMakeFiles/fig02_headroom.dir/fig02_headroom.cc.o.d"
  "fig02_headroom"
  "fig02_headroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_headroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
