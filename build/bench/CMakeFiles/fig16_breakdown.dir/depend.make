# Empty dependencies file for fig16_breakdown.
# This may be replaced when dependencies are built.
