# Empty dependencies file for fig22_wafer_7x12.
# This may be replaced when dependencies are built.
