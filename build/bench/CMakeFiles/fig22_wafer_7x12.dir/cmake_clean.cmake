file(REMOVE_RECURSE
  "CMakeFiles/fig22_wafer_7x12.dir/bench_common.cc.o"
  "CMakeFiles/fig22_wafer_7x12.dir/bench_common.cc.o.d"
  "CMakeFiles/fig22_wafer_7x12.dir/fig22_wafer_7x12.cc.o"
  "CMakeFiles/fig22_wafer_7x12.dir/fig22_wafer_7x12.cc.o.d"
  "fig22_wafer_7x12"
  "fig22_wafer_7x12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_wafer_7x12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
