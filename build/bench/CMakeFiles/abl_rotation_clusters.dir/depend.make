# Empty dependencies file for abl_rotation_clusters.
# This may be replaced when dependencies are built.
