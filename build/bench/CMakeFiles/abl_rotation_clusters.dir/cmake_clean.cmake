file(REMOVE_RECURSE
  "CMakeFiles/abl_rotation_clusters.dir/abl_rotation_clusters.cc.o"
  "CMakeFiles/abl_rotation_clusters.dir/abl_rotation_clusters.cc.o.d"
  "CMakeFiles/abl_rotation_clusters.dir/bench_common.cc.o"
  "CMakeFiles/abl_rotation_clusters.dir/bench_common.cc.o.d"
  "abl_rotation_clusters"
  "abl_rotation_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rotation_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
