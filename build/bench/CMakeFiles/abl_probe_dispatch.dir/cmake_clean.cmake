file(REMOVE_RECURSE
  "CMakeFiles/abl_probe_dispatch.dir/abl_probe_dispatch.cc.o"
  "CMakeFiles/abl_probe_dispatch.dir/abl_probe_dispatch.cc.o.d"
  "CMakeFiles/abl_probe_dispatch.dir/bench_common.cc.o"
  "CMakeFiles/abl_probe_dispatch.dir/bench_common.cc.o.d"
  "abl_probe_dispatch"
  "abl_probe_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_probe_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
