# Empty dependencies file for abl_probe_dispatch.
# This may be replaced when dependencies are built.
