file(REMOVE_RECURSE
  "CMakeFiles/abl_layers_threshold.dir/abl_layers_threshold.cc.o"
  "CMakeFiles/abl_layers_threshold.dir/abl_layers_threshold.cc.o.d"
  "CMakeFiles/abl_layers_threshold.dir/bench_common.cc.o"
  "CMakeFiles/abl_layers_threshold.dir/bench_common.cc.o.d"
  "abl_layers_threshold"
  "abl_layers_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_layers_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
