# Empty dependencies file for fig06_translation_counts.
# This may be replaced when dependencies are built.
