file(REMOVE_RECURSE
  "CMakeFiles/fig06_translation_counts.dir/bench_common.cc.o"
  "CMakeFiles/fig06_translation_counts.dir/bench_common.cc.o.d"
  "CMakeFiles/fig06_translation_counts.dir/fig06_translation_counts.cc.o"
  "CMakeFiles/fig06_translation_counts.dir/fig06_translation_counts.cc.o.d"
  "fig06_translation_counts"
  "fig06_translation_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_translation_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
