file(REMOVE_RECURSE
  "CMakeFiles/tab3_area_power.dir/bench_common.cc.o"
  "CMakeFiles/tab3_area_power.dir/bench_common.cc.o.d"
  "CMakeFiles/tab3_area_power.dir/tab3_area_power.cc.o"
  "CMakeFiles/tab3_area_power.dir/tab3_area_power.cc.o.d"
  "tab3_area_power"
  "tab3_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
