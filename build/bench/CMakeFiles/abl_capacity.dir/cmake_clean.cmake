file(REMOVE_RECURSE
  "CMakeFiles/abl_capacity.dir/abl_capacity.cc.o"
  "CMakeFiles/abl_capacity.dir/abl_capacity.cc.o.d"
  "CMakeFiles/abl_capacity.dir/bench_common.cc.o"
  "CMakeFiles/abl_capacity.dir/bench_common.cc.o.d"
  "abl_capacity"
  "abl_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
