# Empty dependencies file for fig21_gpu_generations.
# This may be replaced when dependencies are built.
