file(REMOVE_RECURSE
  "CMakeFiles/fig21_gpu_generations.dir/bench_common.cc.o"
  "CMakeFiles/fig21_gpu_generations.dir/bench_common.cc.o.d"
  "CMakeFiles/fig21_gpu_generations.dir/fig21_gpu_generations.cc.o"
  "CMakeFiles/fig21_gpu_generations.dir/fig21_gpu_generations.cc.o.d"
  "fig21_gpu_generations"
  "fig21_gpu_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_gpu_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
