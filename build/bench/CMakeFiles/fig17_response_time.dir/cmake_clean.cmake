file(REMOVE_RECURSE
  "CMakeFiles/fig17_response_time.dir/bench_common.cc.o"
  "CMakeFiles/fig17_response_time.dir/bench_common.cc.o.d"
  "CMakeFiles/fig17_response_time.dir/fig17_response_time.cc.o"
  "CMakeFiles/fig17_response_time.dir/fig17_response_time.cc.o.d"
  "fig17_response_time"
  "fig17_response_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_response_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
