# Empty dependencies file for fig17_response_time.
# This may be replaced when dependencies are built.
