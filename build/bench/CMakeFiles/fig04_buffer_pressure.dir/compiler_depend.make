# Empty compiler generated dependencies file for fig04_buffer_pressure.
# This may be replaced when dependencies are built.
