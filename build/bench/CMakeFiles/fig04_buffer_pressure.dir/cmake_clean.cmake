file(REMOVE_RECURSE
  "CMakeFiles/fig04_buffer_pressure.dir/bench_common.cc.o"
  "CMakeFiles/fig04_buffer_pressure.dir/bench_common.cc.o.d"
  "CMakeFiles/fig04_buffer_pressure.dir/fig04_buffer_pressure.cc.o"
  "CMakeFiles/fig04_buffer_pressure.dir/fig04_buffer_pressure.cc.o.d"
  "fig04_buffer_pressure"
  "fig04_buffer_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_buffer_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
