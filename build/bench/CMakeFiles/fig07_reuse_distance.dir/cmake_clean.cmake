file(REMOVE_RECURSE
  "CMakeFiles/fig07_reuse_distance.dir/bench_common.cc.o"
  "CMakeFiles/fig07_reuse_distance.dir/bench_common.cc.o.d"
  "CMakeFiles/fig07_reuse_distance.dir/fig07_reuse_distance.cc.o"
  "CMakeFiles/fig07_reuse_distance.dir/fig07_reuse_distance.cc.o.d"
  "fig07_reuse_distance"
  "fig07_reuse_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_reuse_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
