# Empty compiler generated dependencies file for fig18_prefetch_degree.
# This may be replaced when dependencies are built.
