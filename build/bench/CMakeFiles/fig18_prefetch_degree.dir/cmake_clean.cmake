file(REMOVE_RECURSE
  "CMakeFiles/fig18_prefetch_degree.dir/bench_common.cc.o"
  "CMakeFiles/fig18_prefetch_degree.dir/bench_common.cc.o.d"
  "CMakeFiles/fig18_prefetch_degree.dir/fig18_prefetch_degree.cc.o"
  "CMakeFiles/fig18_prefetch_degree.dir/fig18_prefetch_degree.cc.o.d"
  "fig18_prefetch_degree"
  "fig18_prefetch_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_prefetch_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
