# Empty dependencies file for fig19_rt_vs_tlb.
# This may be replaced when dependencies are built.
