file(REMOVE_RECURSE
  "CMakeFiles/fig19_rt_vs_tlb.dir/bench_common.cc.o"
  "CMakeFiles/fig19_rt_vs_tlb.dir/bench_common.cc.o.d"
  "CMakeFiles/fig19_rt_vs_tlb.dir/fig19_rt_vs_tlb.cc.o"
  "CMakeFiles/fig19_rt_vs_tlb.dir/fig19_rt_vs_tlb.cc.o.d"
  "fig19_rt_vs_tlb"
  "fig19_rt_vs_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_rt_vs_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
