file(REMOVE_RECURSE
  "CMakeFiles/fig13_size_invariance.dir/bench_common.cc.o"
  "CMakeFiles/fig13_size_invariance.dir/bench_common.cc.o.d"
  "CMakeFiles/fig13_size_invariance.dir/fig13_size_invariance.cc.o"
  "CMakeFiles/fig13_size_invariance.dir/fig13_size_invariance.cc.o.d"
  "fig13_size_invariance"
  "fig13_size_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_size_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
