# Empty dependencies file for fig13_size_invariance.
# This may be replaced when dependencies are built.
