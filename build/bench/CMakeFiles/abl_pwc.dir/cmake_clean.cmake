file(REMOVE_RECURSE
  "CMakeFiles/abl_pwc.dir/abl_pwc.cc.o"
  "CMakeFiles/abl_pwc.dir/abl_pwc.cc.o.d"
  "CMakeFiles/abl_pwc.dir/bench_common.cc.o"
  "CMakeFiles/abl_pwc.dir/bench_common.cc.o.d"
  "abl_pwc"
  "abl_pwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
