# Empty compiler generated dependencies file for fig05_position_imbalance.
# This may be replaced when dependencies are built.
