file(REMOVE_RECURSE
  "CMakeFiles/fig05_position_imbalance.dir/bench_common.cc.o"
  "CMakeFiles/fig05_position_imbalance.dir/bench_common.cc.o.d"
  "CMakeFiles/fig05_position_imbalance.dir/fig05_position_imbalance.cc.o"
  "CMakeFiles/fig05_position_imbalance.dir/fig05_position_imbalance.cc.o.d"
  "fig05_position_imbalance"
  "fig05_position_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_position_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
