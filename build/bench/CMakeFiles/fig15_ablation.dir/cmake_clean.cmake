file(REMOVE_RECURSE
  "CMakeFiles/fig15_ablation.dir/bench_common.cc.o"
  "CMakeFiles/fig15_ablation.dir/bench_common.cc.o.d"
  "CMakeFiles/fig15_ablation.dir/fig15_ablation.cc.o"
  "CMakeFiles/fig15_ablation.dir/fig15_ablation.cc.o.d"
  "fig15_ablation"
  "fig15_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
