
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cc" "bench/CMakeFiles/fig15_ablation.dir/bench_common.cc.o" "gcc" "bench/CMakeFiles/fig15_ablation.dir/bench_common.cc.o.d"
  "/root/repo/bench/fig15_ablation.cc" "bench/CMakeFiles/fig15_ablation.dir/fig15_ablation.cc.o" "gcc" "bench/CMakeFiles/fig15_ablation.dir/fig15_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hdpat_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_gpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
