file(REMOVE_RECURSE
  "CMakeFiles/fig08_spatial_locality.dir/bench_common.cc.o"
  "CMakeFiles/fig08_spatial_locality.dir/bench_common.cc.o.d"
  "CMakeFiles/fig08_spatial_locality.dir/fig08_spatial_locality.cc.o"
  "CMakeFiles/fig08_spatial_locality.dir/fig08_spatial_locality.cc.o.d"
  "fig08_spatial_locality"
  "fig08_spatial_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_spatial_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
