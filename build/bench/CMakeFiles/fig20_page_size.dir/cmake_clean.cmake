file(REMOVE_RECURSE
  "CMakeFiles/fig20_page_size.dir/bench_common.cc.o"
  "CMakeFiles/fig20_page_size.dir/bench_common.cc.o.d"
  "CMakeFiles/fig20_page_size.dir/fig20_page_size.cc.o"
  "CMakeFiles/fig20_page_size.dir/fig20_page_size.cc.o.d"
  "fig20_page_size"
  "fig20_page_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_page_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
