# Empty compiler generated dependencies file for fig20_page_size.
# This may be replaced when dependencies are built.
