# Empty dependencies file for hdpat_tests.
# This may be replaced when dependencies are built.
