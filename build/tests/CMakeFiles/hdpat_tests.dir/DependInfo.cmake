
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_area_model.cc" "tests/CMakeFiles/hdpat_tests.dir/test_area_model.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_area_model.cc.o.d"
  "/root/repo/tests/test_channels.cc" "tests/CMakeFiles/hdpat_tests.dir/test_channels.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_channels.cc.o.d"
  "/root/repo/tests/test_cluster_map.cc" "tests/CMakeFiles/hdpat_tests.dir/test_cluster_map.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_cluster_map.cc.o.d"
  "/root/repo/tests/test_concentric_layers.cc" "tests/CMakeFiles/hdpat_tests.dir/test_concentric_layers.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_concentric_layers.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/hdpat_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_cuckoo_filter.cc" "tests/CMakeFiles/hdpat_tests.dir/test_cuckoo_filter.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_cuckoo_filter.cc.o.d"
  "/root/repo/tests/test_dram_model.cc" "tests/CMakeFiles/hdpat_tests.dir/test_dram_model.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_dram_model.cc.o.d"
  "/root/repo/tests/test_engine.cc" "tests/CMakeFiles/hdpat_tests.dir/test_engine.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_engine.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/hdpat_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/hdpat_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_geometry.cc" "tests/CMakeFiles/hdpat_tests.dir/test_geometry.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_geometry.cc.o.d"
  "/root/repo/tests/test_gmmu.cc" "tests/CMakeFiles/hdpat_tests.dir/test_gmmu.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_gmmu.cc.o.d"
  "/root/repo/tests/test_gpm.cc" "tests/CMakeFiles/hdpat_tests.dir/test_gpm.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_gpm.cc.o.d"
  "/root/repo/tests/test_iommu.cc" "tests/CMakeFiles/hdpat_tests.dir/test_iommu.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_iommu.cc.o.d"
  "/root/repo/tests/test_iommu_tlb.cc" "tests/CMakeFiles/hdpat_tests.dir/test_iommu_tlb.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_iommu_tlb.cc.o.d"
  "/root/repo/tests/test_mesh_topology.cc" "tests/CMakeFiles/hdpat_tests.dir/test_mesh_topology.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_mesh_topology.cc.o.d"
  "/root/repo/tests/test_mshr.cc" "tests/CMakeFiles/hdpat_tests.dir/test_mshr.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_mshr.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/hdpat_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_noc_congestion.cc" "tests/CMakeFiles/hdpat_tests.dir/test_noc_congestion.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_noc_congestion.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/hdpat_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_page_walk_cache.cc" "tests/CMakeFiles/hdpat_tests.dir/test_page_walk_cache.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_page_walk_cache.cc.o.d"
  "/root/repo/tests/test_paper_shapes.cc" "tests/CMakeFiles/hdpat_tests.dir/test_paper_shapes.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_paper_shapes.cc.o.d"
  "/root/repo/tests/test_policy_integration.cc" "tests/CMakeFiles/hdpat_tests.dir/test_policy_integration.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_policy_integration.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/hdpat_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_redirection_table.cc" "tests/CMakeFiles/hdpat_tests.dir/test_redirection_table.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_redirection_table.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/hdpat_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/hdpat_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_set_assoc_cache.cc" "tests/CMakeFiles/hdpat_tests.dir/test_set_assoc_cache.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_set_assoc_cache.cc.o.d"
  "/root/repo/tests/test_shootdown.cc" "tests/CMakeFiles/hdpat_tests.dir/test_shootdown.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_shootdown.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/hdpat_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_system_integration.cc" "tests/CMakeFiles/hdpat_tests.dir/test_system_integration.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_system_integration.cc.o.d"
  "/root/repo/tests/test_table_printer.cc" "tests/CMakeFiles/hdpat_tests.dir/test_table_printer.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_table_printer.cc.o.d"
  "/root/repo/tests/test_timing_details.cc" "tests/CMakeFiles/hdpat_tests.dir/test_timing_details.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_timing_details.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/hdpat_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_trace_analysis.cc" "tests/CMakeFiles/hdpat_tests.dir/test_trace_analysis.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_trace_analysis.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/hdpat_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/hdpat_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hdpat_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_gpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
