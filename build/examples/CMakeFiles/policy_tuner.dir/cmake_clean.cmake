file(REMOVE_RECURSE
  "CMakeFiles/policy_tuner.dir/policy_tuner.cpp.o"
  "CMakeFiles/policy_tuner.dir/policy_tuner.cpp.o.d"
  "policy_tuner"
  "policy_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
