file(REMOVE_RECURSE
  "CMakeFiles/wafer_sweep.dir/wafer_sweep.cpp.o"
  "CMakeFiles/wafer_sweep.dir/wafer_sweep.cpp.o.d"
  "wafer_sweep"
  "wafer_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafer_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
