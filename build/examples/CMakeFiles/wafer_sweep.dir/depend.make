# Empty dependencies file for wafer_sweep.
# This may be replaced when dependencies are built.
