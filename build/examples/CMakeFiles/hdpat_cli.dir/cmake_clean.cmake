file(REMOVE_RECURSE
  "CMakeFiles/hdpat_cli.dir/hdpat_cli.cpp.o"
  "CMakeFiles/hdpat_cli.dir/hdpat_cli.cpp.o.d"
  "hdpat_cli"
  "hdpat_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdpat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
