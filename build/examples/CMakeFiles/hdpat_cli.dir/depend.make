# Empty dependencies file for hdpat_cli.
# This may be replaced when dependencies are built.
