
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/gpu_presets.cc" "src/CMakeFiles/hdpat_config.dir/config/gpu_presets.cc.o" "gcc" "src/CMakeFiles/hdpat_config.dir/config/gpu_presets.cc.o.d"
  "/root/repo/src/config/system_config.cc" "src/CMakeFiles/hdpat_config.dir/config/system_config.cc.o" "gcc" "src/CMakeFiles/hdpat_config.dir/config/system_config.cc.o.d"
  "/root/repo/src/config/translation_policy.cc" "src/CMakeFiles/hdpat_config.dir/config/translation_policy.cc.o" "gcc" "src/CMakeFiles/hdpat_config.dir/config/translation_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hdpat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
