# Empty dependencies file for hdpat_config.
# This may be replaced when dependencies are built.
