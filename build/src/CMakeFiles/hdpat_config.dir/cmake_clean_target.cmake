file(REMOVE_RECURSE
  "libhdpat_config.a"
)
