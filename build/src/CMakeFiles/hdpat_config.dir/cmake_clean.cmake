file(REMOVE_RECURSE
  "CMakeFiles/hdpat_config.dir/config/gpu_presets.cc.o"
  "CMakeFiles/hdpat_config.dir/config/gpu_presets.cc.o.d"
  "CMakeFiles/hdpat_config.dir/config/system_config.cc.o"
  "CMakeFiles/hdpat_config.dir/config/system_config.cc.o.d"
  "CMakeFiles/hdpat_config.dir/config/translation_policy.cc.o"
  "CMakeFiles/hdpat_config.dir/config/translation_policy.cc.o.d"
  "libhdpat_config.a"
  "libhdpat_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdpat_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
