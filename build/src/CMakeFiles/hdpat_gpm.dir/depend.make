# Empty dependencies file for hdpat_gpm.
# This may be replaced when dependencies are built.
