file(REMOVE_RECURSE
  "CMakeFiles/hdpat_gpm.dir/gpm/gmmu.cc.o"
  "CMakeFiles/hdpat_gpm.dir/gpm/gmmu.cc.o.d"
  "CMakeFiles/hdpat_gpm.dir/gpm/gpm.cc.o"
  "CMakeFiles/hdpat_gpm.dir/gpm/gpm.cc.o.d"
  "CMakeFiles/hdpat_gpm.dir/gpm/translation_client.cc.o"
  "CMakeFiles/hdpat_gpm.dir/gpm/translation_client.cc.o.d"
  "libhdpat_gpm.a"
  "libhdpat_gpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdpat_gpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
