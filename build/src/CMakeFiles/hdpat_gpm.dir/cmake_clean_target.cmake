file(REMOVE_RECURSE
  "libhdpat_gpm.a"
)
