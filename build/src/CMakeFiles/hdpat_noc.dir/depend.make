# Empty dependencies file for hdpat_noc.
# This may be replaced when dependencies are built.
