file(REMOVE_RECURSE
  "libhdpat_noc.a"
)
