file(REMOVE_RECURSE
  "CMakeFiles/hdpat_noc.dir/noc/geometry.cc.o"
  "CMakeFiles/hdpat_noc.dir/noc/geometry.cc.o.d"
  "CMakeFiles/hdpat_noc.dir/noc/mesh_topology.cc.o"
  "CMakeFiles/hdpat_noc.dir/noc/mesh_topology.cc.o.d"
  "CMakeFiles/hdpat_noc.dir/noc/network.cc.o"
  "CMakeFiles/hdpat_noc.dir/noc/network.cc.o.d"
  "libhdpat_noc.a"
  "libhdpat_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdpat_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
