file(REMOVE_RECURSE
  "CMakeFiles/hdpat_driver.dir/driver/area_model.cc.o"
  "CMakeFiles/hdpat_driver.dir/driver/area_model.cc.o.d"
  "CMakeFiles/hdpat_driver.dir/driver/experiment.cc.o"
  "CMakeFiles/hdpat_driver.dir/driver/experiment.cc.o.d"
  "CMakeFiles/hdpat_driver.dir/driver/report.cc.o"
  "CMakeFiles/hdpat_driver.dir/driver/report.cc.o.d"
  "CMakeFiles/hdpat_driver.dir/driver/run_result.cc.o"
  "CMakeFiles/hdpat_driver.dir/driver/run_result.cc.o.d"
  "CMakeFiles/hdpat_driver.dir/driver/runner.cc.o"
  "CMakeFiles/hdpat_driver.dir/driver/runner.cc.o.d"
  "CMakeFiles/hdpat_driver.dir/driver/system.cc.o"
  "CMakeFiles/hdpat_driver.dir/driver/system.cc.o.d"
  "CMakeFiles/hdpat_driver.dir/driver/table_printer.cc.o"
  "CMakeFiles/hdpat_driver.dir/driver/table_printer.cc.o.d"
  "CMakeFiles/hdpat_driver.dir/driver/trace_analysis.cc.o"
  "CMakeFiles/hdpat_driver.dir/driver/trace_analysis.cc.o.d"
  "libhdpat_driver.a"
  "libhdpat_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdpat_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
