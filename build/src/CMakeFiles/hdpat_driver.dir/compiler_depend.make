# Empty compiler generated dependencies file for hdpat_driver.
# This may be replaced when dependencies are built.
