
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/area_model.cc" "src/CMakeFiles/hdpat_driver.dir/driver/area_model.cc.o" "gcc" "src/CMakeFiles/hdpat_driver.dir/driver/area_model.cc.o.d"
  "/root/repo/src/driver/experiment.cc" "src/CMakeFiles/hdpat_driver.dir/driver/experiment.cc.o" "gcc" "src/CMakeFiles/hdpat_driver.dir/driver/experiment.cc.o.d"
  "/root/repo/src/driver/report.cc" "src/CMakeFiles/hdpat_driver.dir/driver/report.cc.o" "gcc" "src/CMakeFiles/hdpat_driver.dir/driver/report.cc.o.d"
  "/root/repo/src/driver/run_result.cc" "src/CMakeFiles/hdpat_driver.dir/driver/run_result.cc.o" "gcc" "src/CMakeFiles/hdpat_driver.dir/driver/run_result.cc.o.d"
  "/root/repo/src/driver/runner.cc" "src/CMakeFiles/hdpat_driver.dir/driver/runner.cc.o" "gcc" "src/CMakeFiles/hdpat_driver.dir/driver/runner.cc.o.d"
  "/root/repo/src/driver/system.cc" "src/CMakeFiles/hdpat_driver.dir/driver/system.cc.o" "gcc" "src/CMakeFiles/hdpat_driver.dir/driver/system.cc.o.d"
  "/root/repo/src/driver/table_printer.cc" "src/CMakeFiles/hdpat_driver.dir/driver/table_printer.cc.o" "gcc" "src/CMakeFiles/hdpat_driver.dir/driver/table_printer.cc.o.d"
  "/root/repo/src/driver/trace_analysis.cc" "src/CMakeFiles/hdpat_driver.dir/driver/trace_analysis.cc.o" "gcc" "src/CMakeFiles/hdpat_driver.dir/driver/trace_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hdpat_gpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
