file(REMOVE_RECURSE
  "libhdpat_driver.a"
)
