# Empty dependencies file for hdpat_core.
# This may be replaced when dependencies are built.
