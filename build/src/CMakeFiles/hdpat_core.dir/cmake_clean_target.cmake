file(REMOVE_RECURSE
  "libhdpat_core.a"
)
