file(REMOVE_RECURSE
  "CMakeFiles/hdpat_core.dir/hdpat/cluster_map.cc.o"
  "CMakeFiles/hdpat_core.dir/hdpat/cluster_map.cc.o.d"
  "CMakeFiles/hdpat_core.dir/hdpat/concentric_layers.cc.o"
  "CMakeFiles/hdpat_core.dir/hdpat/concentric_layers.cc.o.d"
  "libhdpat_core.a"
  "libhdpat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdpat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
