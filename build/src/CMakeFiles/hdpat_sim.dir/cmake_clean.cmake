file(REMOVE_RECURSE
  "CMakeFiles/hdpat_sim.dir/sim/engine.cc.o"
  "CMakeFiles/hdpat_sim.dir/sim/engine.cc.o.d"
  "CMakeFiles/hdpat_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/hdpat_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/hdpat_sim.dir/sim/log.cc.o"
  "CMakeFiles/hdpat_sim.dir/sim/log.cc.o.d"
  "CMakeFiles/hdpat_sim.dir/sim/rng.cc.o"
  "CMakeFiles/hdpat_sim.dir/sim/rng.cc.o.d"
  "CMakeFiles/hdpat_sim.dir/sim/stats.cc.o"
  "CMakeFiles/hdpat_sim.dir/sim/stats.cc.o.d"
  "libhdpat_sim.a"
  "libhdpat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdpat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
