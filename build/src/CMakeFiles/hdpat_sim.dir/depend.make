# Empty dependencies file for hdpat_sim.
# This may be replaced when dependencies are built.
