file(REMOVE_RECURSE
  "libhdpat_sim.a"
)
