# Empty compiler generated dependencies file for hdpat_sim.
# This may be replaced when dependencies are built.
