# Empty dependencies file for hdpat_iommu.
# This may be replaced when dependencies are built.
