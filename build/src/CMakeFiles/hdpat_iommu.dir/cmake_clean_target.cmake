file(REMOVE_RECURSE
  "libhdpat_iommu.a"
)
