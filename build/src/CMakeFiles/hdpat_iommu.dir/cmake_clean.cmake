file(REMOVE_RECURSE
  "CMakeFiles/hdpat_iommu.dir/iommu/iommu.cc.o"
  "CMakeFiles/hdpat_iommu.dir/iommu/iommu.cc.o.d"
  "CMakeFiles/hdpat_iommu.dir/iommu/iommu_tlb.cc.o"
  "CMakeFiles/hdpat_iommu.dir/iommu/iommu_tlb.cc.o.d"
  "CMakeFiles/hdpat_iommu.dir/iommu/redirection_table.cc.o"
  "CMakeFiles/hdpat_iommu.dir/iommu/redirection_table.cc.o.d"
  "libhdpat_iommu.a"
  "libhdpat_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdpat_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
