
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cuckoo_filter.cc" "src/CMakeFiles/hdpat_mem.dir/mem/cuckoo_filter.cc.o" "gcc" "src/CMakeFiles/hdpat_mem.dir/mem/cuckoo_filter.cc.o.d"
  "/root/repo/src/mem/dram_model.cc" "src/CMakeFiles/hdpat_mem.dir/mem/dram_model.cc.o" "gcc" "src/CMakeFiles/hdpat_mem.dir/mem/dram_model.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/hdpat_mem.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/hdpat_mem.dir/mem/page_table.cc.o.d"
  "/root/repo/src/mem/page_walk_cache.cc" "src/CMakeFiles/hdpat_mem.dir/mem/page_walk_cache.cc.o" "gcc" "src/CMakeFiles/hdpat_mem.dir/mem/page_walk_cache.cc.o.d"
  "/root/repo/src/mem/set_assoc_cache.cc" "src/CMakeFiles/hdpat_mem.dir/mem/set_assoc_cache.cc.o" "gcc" "src/CMakeFiles/hdpat_mem.dir/mem/set_assoc_cache.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/hdpat_mem.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/hdpat_mem.dir/mem/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hdpat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
