# Empty compiler generated dependencies file for hdpat_mem.
# This may be replaced when dependencies are built.
