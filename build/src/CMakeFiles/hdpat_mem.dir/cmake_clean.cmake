file(REMOVE_RECURSE
  "CMakeFiles/hdpat_mem.dir/mem/cuckoo_filter.cc.o"
  "CMakeFiles/hdpat_mem.dir/mem/cuckoo_filter.cc.o.d"
  "CMakeFiles/hdpat_mem.dir/mem/dram_model.cc.o"
  "CMakeFiles/hdpat_mem.dir/mem/dram_model.cc.o.d"
  "CMakeFiles/hdpat_mem.dir/mem/page_table.cc.o"
  "CMakeFiles/hdpat_mem.dir/mem/page_table.cc.o.d"
  "CMakeFiles/hdpat_mem.dir/mem/page_walk_cache.cc.o"
  "CMakeFiles/hdpat_mem.dir/mem/page_walk_cache.cc.o.d"
  "CMakeFiles/hdpat_mem.dir/mem/set_assoc_cache.cc.o"
  "CMakeFiles/hdpat_mem.dir/mem/set_assoc_cache.cc.o.d"
  "CMakeFiles/hdpat_mem.dir/mem/tlb.cc.o"
  "CMakeFiles/hdpat_mem.dir/mem/tlb.cc.o.d"
  "libhdpat_mem.a"
  "libhdpat_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdpat_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
