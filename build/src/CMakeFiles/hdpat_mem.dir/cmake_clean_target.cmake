file(REMOVE_RECURSE
  "libhdpat_mem.a"
)
