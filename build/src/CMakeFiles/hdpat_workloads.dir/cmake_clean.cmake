file(REMOVE_RECURSE
  "CMakeFiles/hdpat_workloads.dir/workloads/suite.cc.o"
  "CMakeFiles/hdpat_workloads.dir/workloads/suite.cc.o.d"
  "CMakeFiles/hdpat_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/hdpat_workloads.dir/workloads/workload.cc.o.d"
  "libhdpat_workloads.a"
  "libhdpat_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdpat_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
