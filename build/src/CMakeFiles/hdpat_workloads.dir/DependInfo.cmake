
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/suite.cc" "src/CMakeFiles/hdpat_workloads.dir/workloads/suite.cc.o" "gcc" "src/CMakeFiles/hdpat_workloads.dir/workloads/suite.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/hdpat_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/hdpat_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hdpat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdpat_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
