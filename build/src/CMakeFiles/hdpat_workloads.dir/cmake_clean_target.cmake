file(REMOVE_RECURSE
  "libhdpat_workloads.a"
)
