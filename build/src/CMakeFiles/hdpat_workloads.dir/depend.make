# Empty dependencies file for hdpat_workloads.
# This may be replaced when dependencies are built.
