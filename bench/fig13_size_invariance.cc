/**
 * @file
 * Fig 13: time series of IOMMU-served translation requests for FIR at
 * different problem sizes. Similar curve shapes justify using scaled
 * footprints as a proxy for full-size runs.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 13", "FIR IOMMU request rate over time vs problem size",
        "IOMMU pressure is steady and size-invariant, so small "
        "configurations are representative");

    const std::size_t ops = bench::benchOps(argc, argv);

    const std::vector<double> scales = {0.25, 0.5, 1.0};
    std::vector<RunSpec> specs;
    for (const double scale : scales) {
        RunSpec spec;
        spec.config = SystemConfig::mi100();
        spec.policy = TranslationPolicy::baseline();
        spec.workload = "FIR";
        spec.opsPerGpm = ops;
        spec.footprintScale = scale;
        specs.push_back(std::move(spec));
    }
    const std::vector<RunResult> runs = runMany(std::move(specs));

    TablePrinter table({"footprint", "windows", "mean req/window",
                        "peak req/window", "steady-state ratio"});
    std::cout << "per-window IOMMU-served requests (100k-cycle "
                 "windows):\n\n";
    for (std::size_t i = 0; i < scales.size(); ++i) {
        const double scale = scales[i];
        const RunResult &r = runs[i];

        const TimeSeries &served = r.iommu.servedPerWindow;
        double sum = 0.0, peak = 0.0;
        std::cout << "  " << fmt(scale * 256, 0) << " MB: ";
        const std::size_t shown =
            std::min<std::size_t>(16, served.windows());
        for (std::size_t w = 0; w < served.windows(); ++w) {
            sum += served.windowSum(w);
            peak = std::max(peak, served.windowSum(w));
            if (w < shown)
                std::cout << fmt(served.windowSum(w), 0) << " ";
        }
        if (served.windows() > shown)
            std::cout << "...";
        std::cout << '\n';

        const double mean =
            served.windows()
                ? sum / static_cast<double>(served.windows())
                : 0.0;
        table.addRow({fmt(scale * 256, 0) + " MB",
                      std::to_string(served.windows()), fmt(mean, 0),
                      fmt(peak, 0),
                      fmt(peak > 0 ? mean / peak : 0.0, 2)});
    }
    std::cout << '\n';
    table.print(std::cout);
    std::cout << "\nSimilar mean/peak ratios across sizes indicate the "
                 "size-invariant request behaviour of Fig 13.\n";
    return 0;
}
