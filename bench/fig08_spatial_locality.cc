/**
 * @file
 * Fig 8: spatial locality of consecutive translation requests -- the
 * fraction of next requests whose VPN lies within 1/2/4/8/16 pages of
 * the current one (observation O4, the basis for proactive delivery).
 */

#include <iostream>

#include "bench_common.hh"
#include "driver/trace_analysis.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 8", "VPN distance between consecutive IOMMU requests",
        "10%-30% of next requests target pages within a small distance "
        "of the current one, especially AES/FWS/MM");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);

    std::vector<RunSpec> specs;
    for (const std::string &wl : workloadAbbrs())
        specs.push_back(bench::spec(SystemConfig::mi100(),
                                    TranslationPolicy::baseline(), wl,
                                    ops, /*capture_trace=*/true));
    const std::vector<RunResult> runs = runMany(std::move(specs));

    TablePrinter table({"workload", "<=1", "<=2", "<=4", "<=8",
                        "<=16"});
    for (const RunResult &r : runs) {
        const auto fractions = spatialLocalityFractions(
            r.iommu.trace, {1, 2, 4, 8, 16});
        table.addRow({r.workload, fmtPct(fractions[0]),
                      fmtPct(fractions[1]),
                      fmtPct(fractions[2]), fmtPct(fractions[3]),
                      fmtPct(fractions[4])});
    }
    table.print(std::cout);
    return 0;
}
