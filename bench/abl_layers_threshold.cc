/**
 * @file
 * Ablation (this repo): the concentric layer count C (§IV-C says it is
 * tunable by drivers/firmware; default 2) and the selective-push
 * access-count threshold (§IV-F).
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

namespace
{

const std::vector<std::string> kWorkloads = {"SPMV", "PR", "FWS",
                                             "FIR", "MM", "KM"};

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Ablation: layer count C and push threshold",
        "C in {1, 2, 3}; auxiliary push threshold in {1, 2, 4, 8}",
        "the paper defaults to C=2 (\"one step away from the border\") "
        "and a selective push threshold on PTE access counts");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);
    const SystemConfig cfg = SystemConfig::mi100();

    // One grid for everything: baseline, 3 layer counts, 4 thresholds.
    const int layer_counts[] = {1, 2, 3};
    const unsigned thresholds[] = {1, 2, 4, 8};
    std::vector<std::pair<SystemConfig, TranslationPolicy>> combos = {
        {cfg, TranslationPolicy::baseline()}};
    for (const int layers : layer_counts) {
        TranslationPolicy pol = TranslationPolicy::hdpat();
        pol.concentricLayers = layers;
        pol.name = "hdpat-C" + std::to_string(layers);
        combos.emplace_back(cfg, pol);
    }
    for (const unsigned threshold : thresholds) {
        TranslationPolicy pol = TranslationPolicy::hdpat();
        pol.auxPushThreshold = threshold;
        pol.name = "hdpat-t" + std::to_string(threshold);
        combos.emplace_back(cfg, pol);
    }
    const auto grid = runSuiteGrid(combos, ops, kWorkloads);
    const std::vector<RunResult> &base = grid[0];

    {
        TablePrinter table({"C (caching layers)", "caching GPMs",
                            "hdpat G-MEAN"});
        const int ring_sizes[] = {0, 8, 24, 48};
        for (std::size_t i = 0; i < 3; ++i) {
            const int layers = layer_counts[i];
            table.addRow({std::to_string(layers),
                          std::to_string(ring_sizes[layers]),
                          fmt(geomeanSpeedup(base, grid[1 + i])) +
                              "x"});
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    {
        TablePrinter table({"push threshold", "hdpat G-MEAN",
                            "pushes sent (SPMV)"});
        for (std::size_t i = 0; i < 4; ++i) {
            const auto &v = grid[4 + i];
            table.addRow({std::to_string(thresholds[i]),
                          fmt(geomeanSpeedup(base, v)) + "x",
                          std::to_string(v[0].iommu.pushesSent)});
        }
        table.print(std::cout);
    }
    return 0;
}
