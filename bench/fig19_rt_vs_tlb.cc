/**
 * @file
 * Fig 19: the redirection table vs an equal-area conventional TLB at
 * the IOMMU (512 TLB entries vs 1024 RT entries; the TLB's MSHRs limit
 * concurrency and proactive fills thrash it).
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 19", "redirection table vs equal-area IOMMU TLB",
        "the redirection table is 1.27x faster than a conventional "
        "TLB of the same area");

    const std::size_t ops = bench::benchOps(argc, argv, 0.67);
    const SystemConfig cfg = SystemConfig::mi100();

    const auto grid = runSuiteGrid(
        {{cfg, TranslationPolicy::baseline()},
         {cfg, TranslationPolicy::hdpat()},
         {cfg, TranslationPolicy::hdpatWithIommuTlb()}},
        ops);
    const std::vector<RunResult> &base = grid[0];
    const std::vector<RunResult> &with_rt = grid[1];
    const std::vector<RunResult> &with_tlb = grid[2];

    TablePrinter table({"workload", "hdpat+RT", "hdpat+TLB",
                        "RT advantage"});
    std::vector<double> rt_speedups, tlb_speedups, advantage;
    for (std::size_t w = 0; w < base.size(); ++w) {
        const double rt = speedupOver(base[w], with_rt[w]);
        const double tlb = speedupOver(base[w], with_tlb[w]);
        rt_speedups.push_back(rt);
        tlb_speedups.push_back(tlb);
        advantage.push_back(rt / tlb);
        table.addRow({base[w].workload, fmt(rt) + "x",
                      fmt(tlb) + "x", fmt(rt / tlb) + "x"});
    }
    table.addRow({"G-MEAN", fmt(geomean(rt_speedups)) + "x",
                  fmt(geomean(tlb_speedups)) + "x",
                  fmt(geomean(advantage)) + "x"});
    table.print(std::cout);
    return 0;
}
