/**
 * @file
 * Ablation (this repo): IOMMU structure capacities -- the PW-queue
 * size (the limiter the paper notes for Barre) and the redirection
 * table size (Table I: 1024).
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

namespace
{

const std::vector<std::string> kWorkloads = {"SPMV", "PR", "MT",
                                             "FWS", "KM"};

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Ablation: IOMMU structure capacities",
        "PW-queue size (Barre's limiter) and redirection-table size",
        "\"the size of the PW-queue limits [Barre's] performance "
        "improvement\"; the RT is sized 1024 entries");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);

    // PW-queue sweep under Barre (queue revisit is what it bounds).
    {
        const std::vector<std::size_t> capacities = {16, 64, 256,
                                                     1024};
        std::vector<std::pair<SystemConfig, TranslationPolicy>> combos;
        for (const std::size_t capacity : capacities) {
            SystemConfig cfg = SystemConfig::mi100();
            cfg.iommuPwQueueCapacity = capacity;
            combos.emplace_back(cfg, TranslationPolicy::baseline());
            combos.emplace_back(cfg, TranslationPolicy::barre());
        }
        const auto grid = runSuiteGrid(combos, ops, kWorkloads);

        TablePrinter table({"PW-queue capacity", "barre G-MEAN",
                            "revisit completions (SPMV)"});
        for (std::size_t c = 0; c < capacities.size(); ++c) {
            const auto &barre = grid[2 * c + 1];
            table.addRow({std::to_string(capacities[c]),
                          fmt(geomeanSpeedup(grid[2 * c], barre)) +
                              "x",
                          std::to_string(
                              barre[0].iommu.revisitCompletions)});
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // Redirection-table size sweep under full HDPAT.
    {
        const std::vector<std::size_t> sizes = {128, 512, 1024, 4096};
        std::vector<std::pair<SystemConfig, TranslationPolicy>> combos;
        for (const std::size_t entries : sizes) {
            SystemConfig cfg = SystemConfig::mi100();
            cfg.redirectionTableEntries = entries;
            combos.emplace_back(cfg, TranslationPolicy::baseline());
            combos.emplace_back(cfg, TranslationPolicy::hdpat());
        }
        const auto grid = runSuiteGrid(combos, ops, kWorkloads);

        TablePrinter table({"RT entries", "hdpat G-MEAN",
                            "redirects sent (SPMV)"});
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            const auto &hdpat = grid[2 * s + 1];
            table.addRow({std::to_string(sizes[s]),
                          fmt(geomeanSpeedup(grid[2 * s], hdpat)) +
                              "x",
                          std::to_string(
                              hdpat[0].iommu.redirectsSent)});
        }
        table.print(std::cout);
    }
    return 0;
}
