/**
 * @file
 * Ablation (this repo): IOMMU structure capacities -- the PW-queue
 * size (the limiter the paper notes for Barre) and the redirection
 * table size (Table I: 1024).
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

namespace
{

const std::vector<std::string> kWorkloads = {"SPMV", "PR", "MT",
                                             "FWS", "KM"};

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Ablation: IOMMU structure capacities",
        "PW-queue size (Barre's limiter) and redirection-table size",
        "\"the size of the PW-queue limits [Barre's] performance "
        "improvement\"; the RT is sized 1024 entries");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);

    // PW-queue sweep under Barre (queue revisit is what it bounds).
    {
        TablePrinter table({"PW-queue capacity", "barre G-MEAN",
                            "revisit completions (SPMV)"});
        for (const std::size_t capacity : {16u, 64u, 256u, 1024u}) {
            SystemConfig cfg = SystemConfig::mi100();
            cfg.iommuPwQueueCapacity = capacity;
            const auto base = runSuite(
                cfg, TranslationPolicy::baseline(), ops, kWorkloads);
            const auto barre = runSuite(
                cfg, TranslationPolicy::barre(), ops, kWorkloads);
            table.addRow({std::to_string(capacity),
                          fmt(geomeanSpeedup(base, barre)) + "x",
                          std::to_string(
                              barre[0].iommu.revisitCompletions)});
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    // Redirection-table size sweep under full HDPAT.
    {
        TablePrinter table({"RT entries", "hdpat G-MEAN",
                            "redirects sent (SPMV)"});
        for (const std::size_t entries : {128u, 512u, 1024u, 4096u}) {
            SystemConfig cfg = SystemConfig::mi100();
            cfg.redirectionTableEntries = entries;
            const auto base = runSuite(
                cfg, TranslationPolicy::baseline(), ops, kWorkloads);
            const auto hdpat = runSuite(
                cfg, TranslationPolicy::hdpat(), ops, kWorkloads);
            table.addRow({std::to_string(entries),
                          fmt(geomeanSpeedup(base, hdpat)) + "x",
                          std::to_string(
                              hdpat[0].iommu.redirectsSent)});
        }
        table.print(std::cout);
    }
    return 0;
}
