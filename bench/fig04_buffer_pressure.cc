/**
 * @file
 * Fig 4: IOMMU buffer pressure over time for SPMV, comparing the
 * 4-GPM MCM-GPU against the 48-GPM wafer-scale GPU (buffer 4096).
 * Prints the peak buffered-request count per time window.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

namespace
{

void
printSeries(const char *name, const RunResult &r, int max_windows)
{
    const TimeSeries &depth = r.iommu.bufferDepth;
    std::cout << name << " (peak buffered requests per "
              << depth.windowTicks() << "-cycle window):\n  ";
    const int windows =
        std::min<int>(max_windows, static_cast<int>(depth.windows()));
    for (int w = 0; w < windows; ++w)
        std::cout << fmt(depth.windowMax(static_cast<std::size_t>(w)),
                         0)
                  << (w + 1 < windows ? " " : "");
    std::cout << "\n  all-time peak: " << r.iommu.maxBufferDepth
              << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 4", "IOMMU buffer pressure: MCM-GPU vs wafer-scale (SPMV)",
        "the 48-GPM wafer sustains a backlog of ~700 requests while "
        "the 4-GPM MCM stays near zero");

    const std::size_t ops = bench::benchOps(argc, argv);
    const TranslationPolicy pol = TranslationPolicy::baseline();

    SystemConfig mcm = SystemConfig::mcm4();
    mcm.iommuBufferCapacity = 4096;

    SystemConfig wafer = SystemConfig::mi100();
    wafer.iommuBufferCapacity = 4096;

    const std::vector<RunResult> runs =
        runMany({bench::spec(mcm, pol, "SPMV", ops),
                 bench::spec(wafer, pol, "SPMV", ops)});
    const RunResult &mcm_run = runs[0];
    const RunResult &wafer_run = runs[1];

    printSeries("MCM-GPU (4 GPMs)", mcm_run, 24);
    printSeries("wafer-scale GPU (48 GPMs)", wafer_run, 24);

    TablePrinter table({"system", "mean depth", "peak depth",
                        "IOMMU walks"});
    auto mean_depth = [](const RunResult &r) {
        double sum = 0;
        std::uint64_t n = 0;
        const TimeSeries &ts = r.iommu.bufferDepth;
        for (std::size_t w = 0; w < ts.windows(); ++w) {
            sum += ts.windowSum(w);
            n += ts.windowCount(w);
        }
        return n ? sum / static_cast<double>(n) : 0.0;
    };
    table.addRow({"MCM-GPU (4 GPMs)", fmt(mean_depth(mcm_run), 1),
                  std::to_string(mcm_run.iommu.maxBufferDepth),
                  std::to_string(mcm_run.iommu.walksCompleted)});
    table.addRow({"wafer-scale (48 GPMs)",
                  fmt(mean_depth(wafer_run), 1),
                  std::to_string(wafer_run.iommu.maxBufferDepth),
                  std::to_string(wafer_run.iommu.walksCompleted)});
    table.print(std::cout);
    return 0;
}
