/**
 * @file
 * Fig 4: IOMMU buffer pressure over time for SPMV, comparing the
 * 4-GPM MCM-GPU against the 48-GPM wafer-scale GPU (buffer 4096).
 *
 * Like fig05, this harness regenerates the figure from exported
 * introspection data rather than poking the System directly: each
 * run writes the "backpressure" section of the hdpat-metrics-v3 JSON
 * (per-resource occupancy integrals, peaks, time-at-capacity, and
 * the per-window pressure history), the file is re-read through the
 * strict JSON reader, and every series and table below is rebuilt
 * from the parsed document alone. Anything the figure needs but the
 * export lacks is a bug in the export.
 *
 * Printed per system: the per-window peak occupancy of the
 * "iommu.ingress" resource (the paper's buffered-request series), a
 * summary table (time-averaged depth, all-time peak, completed
 * walks), and the most saturated resources from the ranked
 * bottleneck ordering — on the wafer the pressure is squarely in the
 * IOMMU walker pool and pipeline queue, on the MCM nothing saturates.
 */

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "obs/json_reader.hh"

using namespace hdpat;

namespace
{

/** Pressure-history window for the figure's time series. */
constexpr std::int64_t kWindowTicks = 50'000;

/** The row of the "backpressure" section naming @p name; fatal-free. */
const JsonValue *
resourceNamed(const JsonValue &backpressure, const std::string &name)
{
    for (const JsonValue &r : backpressure.at("resources").elements) {
        if (r.at("name").asString() == name)
            return &r;
    }
    return nullptr;
}

struct SystemReport
{
    std::string label;
    JsonValue doc;
};

SystemReport
runSystem(const std::string &label, const SystemConfig &cfg,
          std::size_t ops)
{
    const std::filesystem::path json_path =
        std::filesystem::temp_directory_path() /
        ("hdpat-fig04-" + std::to_string(cfg.meshWidth) + "x" +
         std::to_string(cfg.meshHeight) + ".json");

    RunSpec spec = bench::spec(cfg, TranslationPolicy::baseline(),
                               "SPMV", ops);
    // The figure is rebuilt from this export, so the metrics path is
    // fixed here (HDPAT_METRICS_JSON does not apply to this harness);
    // other env-driven observability still rides along.
    spec.obs.metricsJsonPath = json_path.string();
    spec.obs.backpressure = true;
    spec.obs.backpressureWindow = kWindowTicks;
    runOnce(spec);

    SystemReport report;
    report.label = label;
    report.doc = parseJsonFileOrDie(json_path.string());
    std::filesystem::remove(json_path);
    return report;
}

void
printSeries(const SystemReport &report, int max_windows)
{
    const JsonValue &bp = report.doc.at("backpressure");
    const JsonValue *ingress = resourceNamed(bp, "iommu.ingress");
    std::cout << report.label << " (peak buffered requests per "
              << bp.at("window_ticks").asUint() << "-cycle window):\n  ";
    const JsonValue *windows =
        ingress ? ingress->find("windows") : nullptr;
    const int count =
        windows ? std::min<int>(
                      max_windows,
                      static_cast<int>(windows->elements.size()))
                : 0;
    for (int w = 0; w < count; ++w)
        std::cout << windows->elements[static_cast<std::size_t>(w)]
                         .at("peak")
                         .asUint()
                  << (w + 1 < count ? " " : "");
    std::cout << "\n  all-time peak: "
              << (ingress ? ingress->at("peak").asUint() : 0)
              << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 4", "IOMMU buffer pressure: MCM-GPU vs wafer-scale (SPMV)",
        "the 48-GPM wafer sustains a backlog of ~700 requests while "
        "the 4-GPM MCM stays near zero");

    const std::size_t ops = bench::benchOps(argc, argv);

    SystemConfig mcm = SystemConfig::mcm4();
    mcm.iommuBufferCapacity = 4096;

    SystemConfig wafer = SystemConfig::mi100();
    wafer.iommuBufferCapacity = 4096;

    const std::vector<SystemReport> reports = {
        runSystem("MCM-GPU (4 GPMs)", mcm, ops),
        runSystem("wafer-scale GPU (48 GPMs)", wafer, ops)};

    for (const SystemReport &report : reports)
        printSeries(report, 24);

    TablePrinter table({"system", "mean depth", "peak depth",
                        "IOMMU walks"});
    for (const SystemReport &report : reports) {
        const JsonValue *ingress = resourceNamed(
            report.doc.at("backpressure"), "iommu.ingress");
        table.addRow(
            {report.label,
             fmt(ingress ? ingress->at("mean_occupancy").asNumber()
                         : 0.0,
                 1),
             std::to_string(ingress ? ingress->at("peak").asUint()
                                    : 0),
             std::to_string(report.doc.at("counters")
                                .at("iommu.walks_completed")
                                .asUint())});
    }
    table.print(std::cout);

    // The mechanism behind the backlog, straight from the ranked
    // bottleneck ordering: on the wafer the walker pool and pipeline
    // queue saturate; the MCM's hottest resource barely registers.
    std::cout << '\n';
    TablePrinter hot({"system", "most saturated resource", "kind",
                      "capacity", "saturation", "mean occ"});
    for (const SystemReport &report : reports) {
        const JsonValue &resources =
            report.doc.at("backpressure").at("resources");
        if (resources.elements.empty())
            continue;
        // Export order is the ranked (most-saturated-first) order.
        const JsonValue &top = resources.elements.front();
        hot.addRow({report.label, top.at("name").asString(),
                    top.at("kind").asString(),
                    std::to_string(top.at("capacity").asUint()),
                    fmtPct(top.at("saturation").asNumber()),
                    fmt(top.at("mean_occupancy").asNumber(), 1)});
    }
    hot.print(std::cout);
    return 0;
}
