/**
 * @file
 * Fig 16: breakdown of how HDPAT handles remote address translations
 * -- peer caching, redirection, proactive delivery, or a full IOMMU
 * walk -- per workload plus the aggregate offload fraction.
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 16", "translation-handling breakdown under HDPAT",
        "HDPAT offloads 42.1% of translations from the IOMMU; PR's "
        "peer share is the largest, MT leans on the IOMMU");

    const std::size_t ops = bench::benchOps(argc, argv);
    const auto results = runSuite(SystemConfig::mi100(),
                                  TranslationPolicy::hdpat(), ops);

    TablePrinter table({"workload", "peer caching", "redirection",
                        "proactive delivery", "IOMMU", "offloaded"});
    double offload_sum = 0.0;
    for (const RunResult &r : results) {
        table.addRow(
            {r.workload,
             fmtPct(r.sourceFraction(TranslationSource::PeerCache)),
             fmtPct(r.sourceFraction(TranslationSource::Redirect)),
             fmtPct(r.sourceFraction(
                 TranslationSource::ProactiveDelivery)),
             fmtPct(r.sourceFraction(TranslationSource::IommuWalk)),
             fmtPct(r.offloadedFraction())});
        offload_sum += r.offloadedFraction();
    }
    table.addRow({"MEAN", "-", "-", "-", "-",
                  fmtPct(offload_sum /
                         static_cast<double>(results.size()))});
    table.print(std::cout);
    return 0;
}
