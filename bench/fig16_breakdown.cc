/**
 * @file
 * Fig 16: breakdown of how HDPAT handles remote address translations
 * -- peer caching, redirection, proactive delivery, or a full IOMMU
 * walk -- per workload plus the aggregate offload fraction.
 *
 * Regenerated from exported metrics JSON (fig05-style): each suite
 * run writes a per-workload dump with latency attribution enabled,
 * the source fractions are rebuilt from the "counters" section, and
 * the new mean/p99 end-to-end columns come from the "latency"
 * section's exact measurements. runMany suffixes the shared metrics
 * path with "-<run index>" per workload.
 */

#include <filesystem>
#include <iostream>

#include "bench_common.hh"
#include "obs/json_reader.hh"

using namespace hdpat;

namespace
{

std::uint64_t
sourceCount(const JsonValue &counters, const char *source)
{
    return counters.at(std::string("translation.source.") + source)
        .asUint();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 16", "translation-handling breakdown under HDPAT",
        "HDPAT offloads 42.1% of translations from the IOMMU; PR's "
        "peer share is the largest, MT leans on the IOMMU");

    const std::size_t ops = bench::benchOps(argc, argv);
    const std::filesystem::path json_base =
        std::filesystem::temp_directory_path() / "hdpat-fig16.json";

    std::vector<RunSpec> specs = suiteSpecs(
        SystemConfig::mi100(), TranslationPolicy::hdpat(), ops);
    for (RunSpec &spec : specs) {
        spec.obs.metricsJsonPath = json_base.string();
        spec.obs.latency = true;
        spec.obs.latencySampleN = 1;
    }
    runMany(specs);

    TablePrinter table({"workload", "peer caching", "redirection",
                        "proactive delivery", "IOMMU", "offloaded",
                        "mean lat (cyc)", "p99 lat (cyc)"});
    double offload_sum = 0.0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string path =
            withRunIndexSuffix(json_base.string(), i);
        const JsonValue doc = parseJsonFileOrDie(path);
        const JsonValue &counters = doc.at("counters");

        std::uint64_t total = 0;
        for (std::size_t s = 0; s < kNumTranslationSources; ++s)
            total += sourceCount(
                counters,
                translationSourceName(
                    static_cast<TranslationSource>(s)));
        const auto fraction = [&](const char *source) {
            return total ? static_cast<double>(
                               sourceCount(counters, source)) /
                               static_cast<double>(total)
                         : 0.0;
        };
        // Offloaded = served without involving the IOMMU's walker or
        // its conventional TLB (the paper's 42.1% metric).
        const double offloaded =
            total ? 1.0 - fraction("iommu") - fraction("iommu-tlb")
                  : 0.0;
        offload_sum += offloaded;

        const JsonValue &e2e = doc.at("latency").at("end_to_end");
        table.addRow(
            {doc.at("run").at("workload").asString(),
             fmtPct(fraction("peer-cache")),
             fmtPct(fraction("redirection")),
             fmtPct(fraction("proactive-delivery")),
             fmtPct(fraction("iommu")), fmtPct(offloaded),
             fmt(e2e.at("summary").at("mean").asNumber(), 1),
             std::to_string(
                 e2e.at("quantiles").at("p99").asUint())});

        std::filesystem::remove(path);
    }
    table.addRow({"MEAN", "-", "-", "-", "-",
                  fmtPct(offload_sum /
                         static_cast<double>(specs.size())),
                  "-", "-"});
    table.print(std::cout);
    return 0;
}
