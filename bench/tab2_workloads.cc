/**
 * @file
 * Table II: benchmarks, workgroup counts, and memory footprints.
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

int
main()
{
    bench::printBanner("Table II",
                       "benchmark suite metadata",
                       "14 benchmarks from Hetero-Mark / AMDAPPSDK / "
                       "SHOC / DNNMark with the listed footprints");

    TablePrinter table(
        {"abbr", "benchmark", "workgroups", "memory FP"});
    for (const WorkloadInfo &info : workloadTable()) {
        table.addRow({info.abbr, info.name,
                      std::to_string(info.workgroups),
                      std::to_string(info.footprintBytes >> 20) +
                          " MB"});
    }
    table.print(std::cout);
    return 0;
}
