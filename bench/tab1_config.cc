/**
 * @file
 * Table I: the wafer-scale GPU configuration. Dumps every parameter of
 * the active SystemConfig so runs are auditable against the paper.
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

int
main()
{
    bench::printBanner("Table I", "wafer-scale GPU configuration",
                       "the MI100-derived configuration of Table I");

    const SystemConfig cfg = SystemConfig::mi100();
    TablePrinter table({"module", "configuration"});
    auto tlb_row = [&](const char *name, const TlbLevelParams &tlb) {
        table.addRow({name,
                      std::to_string(tlb.sets) + "-set, " +
                          std::to_string(tlb.ways) + "-way, " +
                          std::to_string(tlb.mshrs) + "-MSHR, " +
                          std::to_string(tlb.latency) +
                          "-cycle latency, LRU"});
    };

    table.addRow({"CU", "1.0 GHz, " + std::to_string(cfg.cusPerGpm) +
                            " per GPM"});
    table.addRow({"L2 cache",
                  std::to_string(cfg.l2CacheBytes >> 20) + " MB, " +
                      std::to_string(cfg.l2CacheWays) + "-way"});
    tlb_row("L1 TLB", cfg.l1Tlb);
    tlb_row("L2 TLB", cfg.l2Tlb);
    table.addRow({"GMMU cache",
                  std::to_string(cfg.lastLevelTlb.sets) + "-set, " +
                      std::to_string(cfg.lastLevelTlb.ways) + "-way"});
    table.addRow({"GMMU",
                  std::to_string(cfg.gmmuWalkers) +
                      " shared page table walkers, " +
                      std::to_string(cfg.gmmuWalkLatency) +
                      " cycles per walk (100 x 5 levels)"});
    table.addRow({"IOMMU",
                  std::to_string(cfg.iommuWalkers) +
                      " shared page table walkers, " +
                      std::to_string(cfg.iommuWalkLatency) +
                      " cycles per walk (100 x 5 levels)"});
    table.addRow({"Redirection table",
                  std::to_string(cfg.redirectionTableEntries) +
                      " entries, LRU"});
    table.addRow({"HBM", "8 GB, " +
                             fmt(cfg.hbmBytesPerTick / 1000.0, 2) +
                             " TB/s, " +
                             std::to_string(cfg.hbmLatency) +
                             "-cycle latency"});
    table.addRow({"Mesh network",
                  fmt(cfg.noc.bytesPerTick, 0) + " GB/s per link, " +
                      std::to_string(cfg.noc.linkLatency) +
                      "-cycle latency per link"});
    table.addRow({"Topology",
                  std::to_string(cfg.meshWidth) + "x" +
                      std::to_string(cfg.meshHeight) + " mesh, " +
                      std::to_string(cfg.numGpms()) +
                      " GPMs + central CPU"});
    table.addRow({"Page size",
                  std::to_string(cfg.pageBytes() / 1024) + " KB"});
    table.print(std::cout);
    return 0;
}
