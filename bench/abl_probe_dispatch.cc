/**
 * @file
 * Ablation (this repo): concurrent vs sequential layer probes. §IV-D
 * says requests go to all concentric layers concurrently and the
 * earliest response wins; the alternative chains probes inward. This
 * harness measures what the concurrency buys.
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

namespace
{

const std::vector<std::string> kWorkloads = {"SPMV", "PR", "FWS",
                                             "FIR", "MM", "KM"};

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Ablation: probe dispatch",
        "concurrent layer probes vs sequential inward chaining",
        "the paper chooses concurrent dispatch so a nearby layer can "
        "answer without waiting for inner-layer misses");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);
    const SystemConfig cfg = SystemConfig::mi100();

    TranslationPolicy concurrent = TranslationPolicy::hdpat();
    TranslationPolicy sequential = TranslationPolicy::hdpat();
    sequential.concurrentProbes = false;
    sequential.name = "hdpat-sequential";

    const auto grid = runSuiteGrid(
        {{cfg, TranslationPolicy::baseline()},
         {cfg, concurrent},
         {cfg, sequential}},
        ops, kWorkloads);
    const std::vector<RunResult> &base = grid[0];
    const std::vector<RunResult> &conc = grid[1];
    const std::vector<RunResult> &seq = grid[2];

    TablePrinter table({"workload", "concurrent", "sequential",
                        "concurrent RTT", "sequential RTT"});
    for (std::size_t w = 0; w < base.size(); ++w) {
        table.addRow({base[w].workload,
                      fmt(speedupOver(base[w], conc[w])) + "x",
                      fmt(speedupOver(base[w], seq[w])) + "x",
                      fmt(conc[w].remoteRtt.mean(), 0),
                      fmt(seq[w].remoteRtt.mean(), 0)});
    }
    table.addRow({"G-MEAN", fmt(geomeanSpeedup(base, conc)) + "x",
                  fmt(geomeanSpeedup(base, seq)) + "x", "-", "-"});
    table.print(std::cout);
    return 0;
}
