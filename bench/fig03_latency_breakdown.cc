/**
 * @file
 * Fig 3: averaged latency breakdown per IOMMU translation request for
 * SPMV -- pre-queue wait, PTW queueing delay, and PTW latency.
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 3", "IOMMU translation latency breakdown (SPMV)",
        "pre-queue delay is the largest component, driven by a "
        "persistent backlog of requests waiting for walkers");

    const std::size_t ops = bench::benchOps(argc, argv);
    const RunResult r =
        bench::run(SystemConfig::mi100(),
                   TranslationPolicy::baseline(), "SPMV", ops);

    const double pre = r.iommu.preQueueLatency.mean();
    const double queue = r.iommu.pwQueueLatency.mean();
    const double walk = r.iommu.walkLatency.mean();
    const double total = pre + queue + walk;

    TablePrinter table(
        {"component", "mean cycles", "share of request latency"});
    table.addRow({"pre-queue latency", fmt(pre, 0),
                  fmtPct(pre / total)});
    table.addRow({"PTW queueing delay", fmt(queue, 0),
                  fmtPct(queue / total)});
    table.addRow({"PTW latency", fmt(walk, 0), fmtPct(walk / total)});
    table.addRow({"total", fmt(total, 0), "100.0%"});
    table.print(std::cout);

    std::cout << "\nIOMMU served " << r.iommu.walksCompleted
              << " walks; peak backlog " << r.iommu.maxBufferDepth
              << " buffered requests.\n";
    return 0;
}
