/**
 * @file
 * Fig 3: averaged latency breakdown per IOMMU translation request for
 * SPMV -- pre-queue wait, PTW queueing delay, and PTW latency.
 *
 * Like fig05, this harness regenerates the figure from exported
 * introspection data rather than poking RunResult fields: the run
 * writes a metrics JSON with latency attribution enabled (exact mode,
 * schema hdpat-metrics-v2), the file is re-read through the strict
 * JSON reader, and every table below is rebuilt from the parsed
 * document alone. The classic IOMMU-pipeline means come from the
 * "summaries" section; the per-stage anatomy and the exact tail
 * quantiles come from the "latency" section.
 */

#include <filesystem>
#include <iostream>

#include "bench_common.hh"
#include "obs/json_reader.hh"
#include "obs/latency.hh"

using namespace hdpat;

namespace
{

/** Histogram p-quantile recomputed from exported {low,high,count}. */
std::uint64_t
histQuantile(const JsonValue &hist, double q)
{
    const std::uint64_t total = hist.at("total").asUint();
    if (total == 0)
        return 0;
    const double target = q * static_cast<double>(total);
    double acc = 0.0;
    std::uint64_t last_high = 0;
    for (const JsonValue &bucket : hist.at("buckets").elements) {
        acc += static_cast<double>(bucket.at("count").asUint());
        last_high = bucket.at("high").asUint();
        if (acc >= target)
            return last_high;
    }
    return last_high;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 3", "IOMMU translation latency breakdown (SPMV)",
        "pre-queue delay is the largest component, driven by a "
        "persistent backlog of requests waiting for walkers");

    const std::size_t ops = bench::benchOps(argc, argv);
    const std::filesystem::path json_path =
        std::filesystem::temp_directory_path() / "hdpat-fig03.json";

    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.policy = TranslationPolicy::baseline();
    spec.workload = "SPMV";
    spec.opsPerGpm = ops;
    spec.seed = 0x5eed;
    // The figure is rebuilt from this export, so the metrics path and
    // exact-mode latency attribution are fixed here.
    spec.obs.metricsJsonPath = json_path.string();
    spec.obs.latency = true;
    spec.obs.latencySampleN = 1;
    runOnce(spec);

    const JsonValue doc = parseJsonFileOrDie(json_path.string());
    const JsonValue &summaries = doc.at("summaries");

    // The paper's three components, from the exported IOMMU summaries.
    const double pre =
        summaries.at("iommu.pre_queue_latency").at("mean").asNumber();
    const double queue =
        summaries.at("iommu.pw_queue_latency").at("mean").asNumber();
    const double walk =
        summaries.at("iommu.walk_latency").at("mean").asNumber();
    const double total = pre + queue + walk;

    TablePrinter table(
        {"component", "mean cycles", "share of request latency"});
    table.addRow({"pre-queue latency", fmt(pre, 0),
                  fmtPct(pre / total)});
    table.addRow({"PTW queueing delay", fmt(queue, 0),
                  fmtPct(queue / total)});
    table.addRow({"PTW latency", fmt(walk, 0), fmtPct(walk / total)});
    table.addRow({"total", fmt(total, 0), "100.0%"});
    table.print(std::cout);

    const JsonValue &counters = doc.at("counters");
    std::cout << "\nIOMMU served "
              << counters.at("iommu.walks_completed").asUint()
              << " walks.\n";

    // Per-stage anatomy of the same run, measured per request rather
    // than recomputed from aggregates: each sampled translation's
    // span is decomposed into stage durations (sum == end-to-end).
    const JsonValue &latency = doc.at("latency");
    const JsonValue &e2e = latency.at("end_to_end");
    const double e2e_sum = e2e.at("summary").at("sum").asNumber();

    std::cout << "\nper-translation stage anatomy ("
              << latency.at("spans").asUint()
              << " spans, exact mode)\n";
    TablePrinter anatomy({"stage", "spans", "mean cycles", "p99",
                          "share of total latency"});
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        const char *name =
            latencyStageName(static_cast<LatencyStage>(s));
        const JsonValue &stage = latency.at("stages").at(name);
        const JsonValue &summary = stage.at("summary");
        if (summary.at("count").asUint() == 0)
            continue;
        anatomy.addRow(
            {name, std::to_string(summary.at("count").asUint()),
             fmt(summary.at("mean").asNumber(), 1),
             std::to_string(histQuantile(stage.at("histogram"), 0.99)),
             fmtPct(e2e_sum > 0.0
                        ? summary.at("sum").asNumber() / e2e_sum
                        : 0.0)});
    }
    anatomy.print(std::cout);

    const JsonValue &quantiles = e2e.at("quantiles");
    std::cout << "\nend-to-end translation ticks (exact order "
                 "statistics): mean "
              << fmt(e2e.at("summary").at("mean").asNumber(), 1)
              << "  p50 " << quantiles.at("p50").asUint() << "  p95 "
              << quantiles.at("p95").asUint() << "  p99 "
              << quantiles.at("p99").asUint() << "  p999 "
              << quantiles.at("p999").asUint() << "\n";

    std::filesystem::remove(json_path);
    return 0;
}
