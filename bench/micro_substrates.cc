/**
 * @file
 * google-benchmark micro-benchmarks of the simulator substrates: they
 * bound per-event simulation cost (the numbers that determine how
 * large a wafer/workload the simulator can handle).
 */

#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <vector>

#include "hdpat/cluster_map.hh"
#include "iommu/redirection_table.hh"
#include "mem/cuckoo_filter.hh"
#include "mem/page_table.hh"
#include "mem/tlb.hh"
#include "noc/network.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"

namespace hdpat
{
namespace
{

// ---- Legacy (pre-SoA) reference implementations -------------------------
//
// Frozen copies of the array-of-structs TLB probe and the slot-loop
// cuckoo bucket ops the simulator shipped before the data-oriented
// rewrite. They exist only as head-to-head baselines: the BM_Legacy*
// benchmarks below measure them against the live SoA/SWAR classes on
// identical access streams, so the layout win stays visible (and its
// erosion measurable) in every BENCH_micro.json record.

/** AoS TLB entry, 32+ bytes per way, as before the SoA split. */
struct LegacyAosTlbEntry
{
    Vpn vpn = 0;
    Pfn pfn = kInvalidPfn;
    bool remote = false;
    bool prefetched = false;
    bool valid = false;
    std::uint64_t lruStamp = 0;
};

/** The old Tlb: one vector of entry structs, early-exit probe loop.
 *  Hash and victim policy match the live class exactly, so both sides
 *  of the head-to-head do identical simulated work. */
class LegacyAosTlb
{
  public:
    LegacyAosTlb(std::size_t num_sets, std::size_t num_ways)
        : numSets_(num_sets), numWays_(num_ways),
          entries_(num_sets * num_ways)
    {
    }

    std::optional<Pfn> lookup(Vpn vpn)
    {
        const std::size_t base = setIndex(vpn) * numWays_;
        for (std::size_t w = 0; w < numWays_; ++w) {
            LegacyAosTlbEntry &e = entries_[base + w];
            if (e.valid && e.vpn == vpn) {
                e.lruStamp = ++lruClock_;
                return e.pfn;
            }
        }
        return std::nullopt;
    }

    void insert(Vpn vpn, Pfn pfn)
    {
        const std::size_t base = setIndex(vpn) * numWays_;
        std::size_t victim = base;
        for (std::size_t w = 0; w < numWays_; ++w) {
            LegacyAosTlbEntry &e = entries_[base + w];
            if (e.valid && e.vpn == vpn) {
                e.pfn = pfn;
                e.lruStamp = ++lruClock_;
                return;
            }
            if (!e.valid) {
                victim = base + w;
                break;
            }
            if (entries_[victim].valid &&
                e.lruStamp < entries_[victim].lruStamp)
                victim = base + w;
        }
        entries_[victim] = {vpn, pfn, false, false, true, ++lruClock_};
    }

  private:
    std::size_t setIndex(Vpn vpn) const
    {
        std::uint64_t x = vpn;
        x ^= x >> 17;
        x *= 0xed5ad4bbull;
        return static_cast<std::size_t>(x % numSets_);
    }

    std::size_t numSets_;
    std::size_t numWays_;
    std::vector<LegacyAosTlbEntry> entries_;
    std::uint64_t lruClock_ = 0;
};

/** The old cuckoo filter: identical hashing and bucket layout to the
 *  live CuckooFilter, but slot-at-a-time loops instead of the SWAR
 *  word ops (insert path only as far as the benchmarks need it). */
class LegacyCuckooFilter
{
  public:
    explicit LegacyCuckooFilter(std::size_t capacity,
                                unsigned fp_bits = 12,
                                std::uint64_t seed = 0x5bd1e995u)
        : fpBits_(fp_bits), seed_(seed)
    {
        std::size_t wanted =
            static_cast<std::size_t>(static_cast<double>(capacity) /
                                     (kSlots * 0.95)) + 1;
        numBuckets_ = 2;
        while (numBuckets_ < wanted)
            numBuckets_ <<= 1;
        table_.assign(numBuckets_ * kSlots, 0);
    }

    bool insert(Vpn vpn)
    {
        const std::uint16_t fp = fingerprintOf(vpn);
        const std::size_t i1 = indexOf(vpn);
        return bucketInsert(i1, fp) || bucketInsert(altIndex(i1, fp), fp);
    }

    bool contains(Vpn vpn) const
    {
        const std::uint16_t fp = fingerprintOf(vpn);
        const std::size_t i1 = indexOf(vpn);
        return bucketContains(i1, fp) ||
               bucketContains(altIndex(i1, fp), fp);
    }

  private:
    static constexpr unsigned kSlots = 4;

    std::uint64_t hash(std::uint64_t x) const
    {
        x ^= seed_;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ull;
        x ^= x >> 33;
        return x;
    }

    std::uint16_t fingerprintOf(Vpn vpn) const
    {
        const std::uint64_t h = hash(vpn * 0x9e3779b97f4a7c15ull + 1);
        const std::uint16_t fp = static_cast<std::uint16_t>(
            h & ((std::uint64_t{1} << fpBits_) - 1));
        return fp == 0 ? 1 : fp;
    }

    std::size_t indexOf(Vpn vpn) const
    {
        return static_cast<std::size_t>(hash(vpn)) & (numBuckets_ - 1);
    }

    std::size_t altIndex(std::size_t idx, std::uint16_t fp) const
    {
        return (idx ^ static_cast<std::size_t>(hash(fp))) &
               (numBuckets_ - 1);
    }

    bool bucketInsert(std::size_t bucket, std::uint16_t fp)
    {
        for (unsigned s = 0; s < kSlots; ++s) {
            auto &slot = table_[bucket * kSlots + s];
            if (slot == 0) {
                slot = fp;
                return true;
            }
        }
        return false;
    }

    bool bucketContains(std::size_t bucket, std::uint16_t fp) const
    {
        for (unsigned s = 0; s < kSlots; ++s)
            if (table_[bucket * kSlots + s] == fp)
                return true;
        return false;
    }

    std::size_t numBuckets_;
    unsigned fpBits_;
    std::uint64_t seed_;
    std::vector<std::uint16_t> table_;
};

void
BM_EventQueueScheduleAndPop(benchmark::State &state)
{
    Engine engine;
    Rng rng(1);
    Tick horizon = 0;
    for (auto _ : state) {
        (void)_;
        horizon = engine.now();
        for (int i = 0; i < 64; ++i)
            engine.scheduleAt(horizon + rng.uniformInt(1000), [] {});
        for (int i = 0; i < 64; ++i)
            engine.step();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void
BM_CuckooFilterLookup(benchmark::State &state)
{
    CuckooFilter filter(1u << 17);
    for (Vpn v = 0; v < 100000; ++v)
        filter.insert(v);
    Vpn probe = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(filter.contains(probe));
        probe = (probe + 7919) % 200000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooFilterLookup);

void
BM_CuckooFilterInsertErase(benchmark::State &state)
{
    CuckooFilter filter(1u << 16);
    Vpn v = 0;
    for (auto _ : state) {
        (void)_;
        filter.insert(v);
        filter.erase(v);
        ++v;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooFilterInsertErase);

/** Same stream as BM_CuckooFilterLookup against the frozen slot-loop
 *  implementation: the delta is the SWAR bucket-op win. */
void
BM_CuckooFilterLookupLegacyAos(benchmark::State &state)
{
    LegacyCuckooFilter filter(1u << 17);
    for (Vpn v = 0; v < 100000; ++v)
        filter.insert(v);
    Vpn probe = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(filter.contains(probe));
        probe = (probe + 7919) % 200000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooFilterLookupLegacyAos);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb tlb(64, 32);
    for (Vpn v = 0; v < 2048; ++v)
        tlb.insert(v, v);
    Vpn probe = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(tlb.lookup(probe));
        probe = (probe + 13) % 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup);

/** Same stream as BM_TlbLookup against the frozen array-of-structs
 *  implementation: the delta is the SoA tag-lane win. */
void
BM_TlbLookupLegacyAos(benchmark::State &state)
{
    LegacyAosTlb tlb(64, 32);
    for (Vpn v = 0; v < 2048; ++v)
        tlb.insert(v, v);
    Vpn probe = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(tlb.lookup(probe));
        probe = (probe + 13) % 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookupLegacyAos);

/**
 * Wafer-shaped probe stream: 48 L2-sized TLBs (one per GPM tile of
 * the 7x7 wafer), probed round-robin the way a sweep's translation
 * traffic strides across tiles. This pair (vs
 * BM_TlbProbeWaferLegacyAos) keeps the layouts honest at the
 * working-set shape the simulator actually runs: probe cost is at
 * parity here, so the end-to-end win must come from elsewhere
 * (construction laziness, the SWAR filter, event fusion) -- which is
 * exactly what the profile attribution shows.
 */
void
BM_TlbProbeWafer(benchmark::State &state)
{
    std::vector<Tlb> tlbs;
    for (int t = 0; t < 48; ++t)
        tlbs.emplace_back(64, 32);
    for (Vpn v = 0; v < 2048; ++v)
        for (auto &tlb : tlbs)
            tlb.insert(v, v);
    Vpn probe = 0;
    std::size_t tile = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(tlbs[tile].lookup(probe));
        tile = (tile + 1) % tlbs.size();
        probe = (probe + 13) % 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbProbeWafer);

void
BM_TlbProbeWaferLegacyAos(benchmark::State &state)
{
    std::vector<LegacyAosTlb> tlbs;
    for (int t = 0; t < 48; ++t)
        tlbs.emplace_back(64, 32);
    for (Vpn v = 0; v < 2048; ++v)
        for (auto &tlb : tlbs)
            tlb.insert(v, v);
    Vpn probe = 0;
    std::size_t tile = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(tlbs[tile].lookup(probe));
        tile = (tile + 1) % tlbs.size();
        probe = (probe + 13) % 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbProbeWaferLegacyAos);

/** Batched admission probe: 64 VPNs per probeMany() call (prefetch
 *  pass + scan pass), the shape the GPM issue loop uses. Compare
 *  against BM_TlbProbeSingle64 for the batching win. */
void
BM_TlbProbeMany64(benchmark::State &state)
{
    Tlb tlb(64, 32);
    for (Vpn v = 0; v < 2048; ++v)
        tlb.insert(v, v);
    std::array<Vpn, 64> batch;
    Vpn probe = 0;
    for (auto _ : state) {
        (void)_;
        for (Vpn &v : batch) {
            v = probe;
            probe = (probe + 13) % 4096;
        }
        benchmark::DoNotOptimize(tlb.probeMany(batch));
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TlbProbeMany64);

/** The same 64 probes one VPN at a time (peek(): side-effect-free,
 *  like probeMany), i.e. the pre-batching admission pattern. */
void
BM_TlbProbeSingle64(benchmark::State &state)
{
    Tlb tlb(64, 32);
    for (Vpn v = 0; v < 2048; ++v)
        tlb.insert(v, v);
    Vpn probe = 0;
    for (auto _ : state) {
        (void)_;
        std::uint64_t hits = 0;
        for (int i = 0; i < 64; ++i) {
            hits = (hits << 1) | (tlb.peek(probe).has_value() ? 1 : 0);
            probe = (probe + 13) % 4096;
        }
        benchmark::DoNotOptimize(hits);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TlbProbeSingle64);

void
BM_RedirectionTableLookup(benchmark::State &state)
{
    RedirectionTable rt(1024);
    for (Vpn v = 0; v < 1024; ++v)
        rt.insert(v, static_cast<TileId>(v % 48));
    Vpn probe = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(rt.lookup(probe));
        probe = (probe + 17) % 2048;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedirectionTableLookup);

void
BM_NetworkComputeArrival(benchmark::State &state)
{
    Engine engine;
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    Network net(engine, topo, NocParams{});
    Rng rng(3);
    const auto &gpms = topo.gpmTiles();
    for (auto _ : state) {
        (void)_;
        const TileId a = gpms[rng.uniformInt(gpms.size())];
        const TileId b = gpms[rng.uniformInt(gpms.size())];
        benchmark::DoNotOptimize(net.computeArrival(0, a, b, 32));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkComputeArrival);

void
BM_ClusterMapAuxTile(benchmark::State &state)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 2);
    const ClusterMap map(layers, 4, true);
    Vpn vpn = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(map.auxTileFor(vpn, 0));
        benchmark::DoNotOptimize(map.auxTileFor(vpn, 1));
        ++vpn;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterMapAuxTile);

void
BM_PageTableTranslate(benchmark::State &state)
{
    GlobalPageTable pt(12);
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    pt.allocate((1u << 16) * pt.pageBytes(), topo.gpmTiles());
    Vpn probe = pt.vpnOf(0x100 << 12);
    Vpn v = probe;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(pt.translate(v));
        v = probe + (v * 2654435761u) % (1u << 16);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableTranslate);

void
BM_ZipfSample(benchmark::State &state)
{
    Rng rng(9);
    ZipfSampler zipf(4096, 0.9);
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(zipf.sample(rng));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

} // namespace
} // namespace hdpat

BENCHMARK_MAIN();
