/**
 * @file
 * google-benchmark micro-benchmarks of the simulator substrates: they
 * bound per-event simulation cost (the numbers that determine how
 * large a wafer/workload the simulator can handle).
 */

#include <benchmark/benchmark.h>

#include "hdpat/cluster_map.hh"
#include "iommu/redirection_table.hh"
#include "mem/cuckoo_filter.hh"
#include "mem/page_table.hh"
#include "mem/tlb.hh"
#include "noc/network.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"

namespace hdpat
{
namespace
{

void
BM_EventQueueScheduleAndPop(benchmark::State &state)
{
    Engine engine;
    Rng rng(1);
    Tick horizon = 0;
    for (auto _ : state) {
        (void)_;
        horizon = engine.now();
        for (int i = 0; i < 64; ++i)
            engine.scheduleAt(horizon + rng.uniformInt(1000), [] {});
        for (int i = 0; i < 64; ++i)
            engine.step();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void
BM_CuckooFilterLookup(benchmark::State &state)
{
    CuckooFilter filter(1u << 17);
    for (Vpn v = 0; v < 100000; ++v)
        filter.insert(v);
    Vpn probe = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(filter.contains(probe));
        probe = (probe + 7919) % 200000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooFilterLookup);

void
BM_CuckooFilterInsertErase(benchmark::State &state)
{
    CuckooFilter filter(1u << 16);
    Vpn v = 0;
    for (auto _ : state) {
        (void)_;
        filter.insert(v);
        filter.erase(v);
        ++v;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooFilterInsertErase);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb tlb(64, 32);
    for (Vpn v = 0; v < 2048; ++v)
        tlb.insert(v, v);
    Vpn probe = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(tlb.lookup(probe));
        probe = (probe + 13) % 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup);

void
BM_RedirectionTableLookup(benchmark::State &state)
{
    RedirectionTable rt(1024);
    for (Vpn v = 0; v < 1024; ++v)
        rt.insert(v, static_cast<TileId>(v % 48));
    Vpn probe = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(rt.lookup(probe));
        probe = (probe + 17) % 2048;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedirectionTableLookup);

void
BM_NetworkComputeArrival(benchmark::State &state)
{
    Engine engine;
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    Network net(engine, topo, NocParams{});
    Rng rng(3);
    const auto &gpms = topo.gpmTiles();
    for (auto _ : state) {
        (void)_;
        const TileId a = gpms[rng.uniformInt(gpms.size())];
        const TileId b = gpms[rng.uniformInt(gpms.size())];
        benchmark::DoNotOptimize(net.computeArrival(0, a, b, 32));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkComputeArrival);

void
BM_ClusterMapAuxTile(benchmark::State &state)
{
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    const ConcentricLayers layers(topo, 2);
    const ClusterMap map(layers, 4, true);
    Vpn vpn = 0;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(map.auxTileFor(vpn, 0));
        benchmark::DoNotOptimize(map.auxTileFor(vpn, 1));
        ++vpn;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterMapAuxTile);

void
BM_PageTableTranslate(benchmark::State &state)
{
    GlobalPageTable pt(12);
    const MeshTopology topo = MeshTopology::wafer(7, 7);
    pt.allocate((1u << 16) * pt.pageBytes(), topo.gpmTiles());
    Vpn probe = pt.vpnOf(0x100 << 12);
    Vpn v = probe;
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(pt.translate(v));
        v = probe + (v * 2654435761u) % (1u << 16);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableTranslate);

void
BM_ZipfSample(benchmark::State &state)
{
    Rng rng(9);
    ZipfSampler zipf(4096, 0.9);
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(zipf.sample(rng));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

} // namespace
} // namespace hdpat

BENCHMARK_MAIN();
