/**
 * @file
 * Fig 14: overall performance of Trans-FW, Valkyrie, Barre, and HDPAT,
 * normalized to the centralized baseline, for all 14 workloads.
 */

#include <iostream>
#include <iterator>

#include "bench_common.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 14", "overall performance vs state-of-the-art",
        "HDPAT achieves 1.57x on average; Trans-FW/Valkyrie/Barre are "
        "modest because remote requests still burden the IOMMU");

    const std::size_t ops = bench::benchOps(argc, argv);
    const SystemConfig cfg = SystemConfig::mi100();

    const std::vector<TranslationPolicy> policies = {
        TranslationPolicy::transFw(), TranslationPolicy::valkyrie(),
        TranslationPolicy::barre(), TranslationPolicy::hdpat()};

    std::vector<std::pair<SystemConfig, TranslationPolicy>> combos = {
        {cfg, TranslationPolicy::baseline()}};
    for (const auto &pol : policies)
        combos.emplace_back(cfg, pol);
    auto grid = runSuiteGrid(combos, ops);

    const std::vector<RunResult> base = std::move(grid[0]);
    const std::vector<std::vector<RunResult>> results(
        std::make_move_iterator(grid.begin() + 1),
        std::make_move_iterator(grid.end()));

    TablePrinter table({"workload", "trans-fw", "valkyrie", "barre",
                        "hdpat"});
    std::vector<std::vector<double>> all_speedups(policies.size());

    for (std::size_t w = 0; w < base.size(); ++w) {
        std::vector<std::string> row{base[w].workload};
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const double s = speedupOver(base[w], results[p][w]);
            all_speedups[p].push_back(s);
            row.push_back(fmt(s) + "x");
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> gmean_row{"G-MEAN"};
    for (const auto &speedups : all_speedups)
        gmean_row.push_back(fmt(geomean(speedups)) + "x");
    table.addRow(std::move(gmean_row));
    table.print(std::cout);
    return 0;
}
