/**
 * @file
 * Fig 6: distribution of per-page translation counts at the IOMMU.
 * Streaming workloads (AES, RELU) translate each page once; others
 * repeat, motivating caching (observation O3).
 */

#include <iostream>

#include "bench_common.hh"
#include "driver/trace_analysis.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 6", "per-page IOMMU translation count distribution",
        "AES and RELU translate each page once; BT/FWT and others "
        "repeat, motivating caching");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);

    std::vector<RunSpec> specs;
    for (const std::string &wl : workloadAbbrs())
        specs.push_back(bench::spec(SystemConfig::mi100(),
                                    TranslationPolicy::baseline(), wl,
                                    ops, /*capture_trace=*/true));
    const std::vector<RunResult> runs = runMany(std::move(specs));

    TablePrinter table({"workload", "pages", "1x", "2x", "3-10x",
                        "11-100x", ">100x"});
    for (const RunResult &r : runs) {
        const std::string &wl = r.workload;
        const TranslationCountBuckets b =
            analyzeTranslationCounts(r.iommu.trace);
        table.addRow({wl, std::to_string(b.totalPages()),
                      fmtPct(b.fraction(b.once)),
                      fmtPct(b.fraction(b.twice)),
                      fmtPct(b.fraction(b.threeToTen)),
                      fmtPct(b.fraction(b.elevenToHundred)),
                      fmtPct(b.fraction(b.moreThanHundred))});
    }
    table.print(std::cout);
    return 0;
}
