#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hdpat::bench
{

void
printBanner(const std::string &figure, const std::string &what,
            const std::string &paper_result)
{
    std::printf("==============================================================\n");
    std::printf("%s -- %s\n", figure.c_str(), what.c_str());
    std::printf("paper reports: %s\n", paper_result.c_str());
    std::printf("(scale op counts with HDPAT_BENCH_SCALE or argv[1]; "
                "parallelize with --jobs N or HDPAT_JOBS)\n");
    std::printf("==============================================================\n\n");
}

std::size_t
benchOps(int argc, char **argv, double fraction)
{
    long long ops_arg = 0;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 < argc) {
                const long long v = std::atoll(argv[++i]);
                if (v > 0)
                    setDefaultJobs(static_cast<unsigned>(v));
            }
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            const long long v = std::atoll(arg + 7);
            if (v > 0)
                setDefaultJobs(static_cast<unsigned>(v));
        } else if (ops_arg == 0) {
            ops_arg = std::atoll(arg);
        }
    }
    if (ops_arg > 0)
        return static_cast<std::size_t>(ops_arg);
    const double ops =
        static_cast<double>(defaultOpsPerGpm()) * fraction;
    return static_cast<std::size_t>(ops < 500.0 ? 500.0 : ops);
}

RunSpec
spec(const SystemConfig &cfg, const TranslationPolicy &pol,
     const std::string &workload, std::size_t ops, bool capture_trace)
{
    RunSpec s;
    s.config = cfg;
    s.policy = pol;
    s.workload = workload;
    s.opsPerGpm = ops;
    s.captureIommuTrace = capture_trace;
    return s;
}

RunResult
run(const SystemConfig &cfg, const TranslationPolicy &pol,
    const std::string &workload, std::size_t ops, bool capture_trace)
{
    return runOnce(spec(cfg, pol, workload, ops, capture_trace));
}

} // namespace hdpat::bench
