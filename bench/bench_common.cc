#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>

namespace hdpat::bench
{

void
printBanner(const std::string &figure, const std::string &what,
            const std::string &paper_result)
{
    std::printf("==============================================================\n");
    std::printf("%s -- %s\n", figure.c_str(), what.c_str());
    std::printf("paper reports: %s\n", paper_result.c_str());
    std::printf("(scale op counts with HDPAT_BENCH_SCALE or argv[1])\n");
    std::printf("==============================================================\n\n");
}

std::size_t
benchOps(int argc, char **argv, double fraction)
{
    if (argc > 1) {
        const long long v = std::atoll(argv[1]);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    const double ops =
        static_cast<double>(defaultOpsPerGpm()) * fraction;
    return static_cast<std::size_t>(ops < 500.0 ? 500.0 : ops);
}

RunResult
run(const SystemConfig &cfg, const TranslationPolicy &pol,
    const std::string &workload, std::size_t ops, bool capture_trace)
{
    RunSpec spec;
    spec.config = cfg;
    spec.policy = pol;
    spec.workload = workload;
    spec.opsPerGpm = ops;
    spec.captureIommuTrace = capture_trace;
    return runOnce(spec);
}

} // namespace hdpat::bench
