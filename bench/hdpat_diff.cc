/**
 * @file
 * hdpat_diff: divergence-localizing comparison of two hdpat-metrics
 * JSON dumps.
 *
 *   hdpat_diff [--ignore SECTION]... A.json B.json
 *
 * Both inputs go through the strict JSON reader (a truncated or
 * malformed dump fails loudly), then the two documents are walked
 * member-by-member in document order. The first divergence is named
 * by its full dotted path with both values — "counters" differ at
 * `counters.iommu.walks_completed: 23580 vs 23581`, not "files
 * differ" — so a determinism break points at the subsystem that
 * caused it instead of at a byte offset. Up to 20 divergences are
 * listed (then a count), because one upstream divergence usually
 * fans out into many downstream metrics and the *first* in document
 * order is the one worth reading.
 *
 * Exit status: 0 when the documents are semantically identical,
 * 1 on any divergence, 2 on usage errors. CI uses this to replace
 * byte-compares of serial-vs-parallel and fused-vs-unfused runs: a
 * byte-compare says only "different"; this says *where*.
 *
 * --ignore SECTION drops a top-level section from both sides before
 * comparing (repeatable). The "profile" section holds host
 * wall-clock times that legitimately differ between runs of the
 * same spec; comparisons that enable profiling ignore it.
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_reader.hh"

using namespace hdpat;

namespace
{

/** One observed difference between the documents. */
struct Divergence
{
    std::string path;
    std::string left;
    std::string right;
};

constexpr std::size_t kMaxReported = 20;

/** Render a scalar JsonValue for the report. */
std::string
scalarText(const JsonValue &v)
{
    std::ostringstream os;
    switch (v.kind) {
    case JsonValue::Kind::Null:
        os << "null";
        break;
    case JsonValue::Kind::Bool:
        os << (v.boolean ? "true" : "false");
        break;
    case JsonValue::Kind::Number:
        os.precision(17);
        os << v.number;
        break;
    case JsonValue::Kind::String:
        os << '"' << v.str << '"';
        break;
    case JsonValue::Kind::Array:
        os << "array[" << v.elements.size() << ']';
        break;
    case JsonValue::Kind::Object:
        os << "object{" << v.members.size() << '}';
        break;
    }
    return os.str();
}

const char *
kindName(JsonValue::Kind kind)
{
    switch (kind) {
    case JsonValue::Kind::Null:
        return "null";
    case JsonValue::Kind::Bool:
        return "bool";
    case JsonValue::Kind::Number:
        return "number";
    case JsonValue::Kind::String:
        return "string";
    case JsonValue::Kind::Array:
        return "array";
    case JsonValue::Kind::Object:
        return "object";
    }
    return "?";
}

/**
 * Recursive structural diff. Divergences are appended in document
 * order of the left document, so the first entry is the earliest
 * diverging metric. The walk continues past a mismatch only at the
 * sibling level — a subtree that differs in kind or length is
 * reported once, not once per leaf.
 */
void
diffValue(const std::string &path, const JsonValue &a,
          const JsonValue &b, std::vector<Divergence> &out)
{
    if (a.kind != b.kind) {
        out.push_back(
            {path, kindName(a.kind) + std::string(" (") +
                       scalarText(a) + ")",
             kindName(b.kind) + std::string(" (") + scalarText(b) +
                 ")"});
        return;
    }
    switch (a.kind) {
    case JsonValue::Kind::Null:
        return;
    case JsonValue::Kind::Bool:
        if (a.boolean != b.boolean)
            out.push_back({path, scalarText(a), scalarText(b)});
        return;
    case JsonValue::Kind::Number:
        // Exact comparison on purpose: simulated quantities are
        // bit-deterministic, so any difference is a real divergence.
        if (a.number != b.number)
            out.push_back({path, scalarText(a), scalarText(b)});
        return;
    case JsonValue::Kind::String:
        if (a.str != b.str)
            out.push_back({path, scalarText(a), scalarText(b)});
        return;
    case JsonValue::Kind::Array: {
        if (a.elements.size() != b.elements.size()) {
            out.push_back({path + ".length",
                           std::to_string(a.elements.size()),
                           std::to_string(b.elements.size())});
            return;
        }
        for (std::size_t i = 0; i < a.elements.size(); ++i)
            diffValue(path + "[" + std::to_string(i) + "]",
                      a.elements[i], b.elements[i], out);
        return;
    }
    case JsonValue::Kind::Object: {
        // Left-to-right over the left document, then right-only keys;
        // key order itself is not compared (the writer's order is
        // stable anyway, and semantic equality is the contract).
        for (const auto &[key, value] : a.members) {
            const std::string child =
                path.empty() ? key : path + "." + key;
            if (const JsonValue *other = b.find(key))
                diffValue(child, value, *other, out);
            else
                out.push_back({child, scalarText(value), "(absent)"});
        }
        for (const auto &[key, value] : b.members) {
            if (!a.find(key)) {
                const std::string child =
                    path.empty() ? key : path + "." + key;
                out.push_back({child, "(absent)", scalarText(value)});
            }
        }
        return;
    }
    }
}

/** Drop top-level @p section from @p doc when present. */
void
dropSection(JsonValue &doc, const std::string &section)
{
    for (auto it = doc.members.begin(); it != doc.members.end(); ++it) {
        if (it->first == section) {
            doc.members.erase(it);
            return;
        }
    }
}

void
usage()
{
    std::cerr
        << "usage: hdpat_diff [--ignore SECTION]... A.json B.json\n"
           "Compares two hdpat-metrics JSON documents section by\n"
           "section and names the first divergent metric with both\n"
           "values. Exit 0 = identical, 1 = divergent. --ignore drops\n"
           "a top-level section (e.g. profile, whose host wall-clock\n"
           "legitimately varies) from both sides first.\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> ignored;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ignore") == 0) {
            if (i + 1 >= argc)
                usage();
            ignored.emplace_back(argv[++i]);
        } else if (argv[i][0] == '-') {
            usage();
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.size() != 2)
        usage();

    JsonValue a = parseJsonFileOrDie(paths[0]);
    JsonValue b = parseJsonFileOrDie(paths[1]);
    for (const std::string &section : ignored) {
        dropSection(a, section);
        dropSection(b, section);
    }

    std::vector<Divergence> divergences;
    diffValue("", a, b, divergences);

    if (divergences.empty()) {
        std::cout << "identical: " << paths[0] << " == " << paths[1];
        if (!ignored.empty()) {
            std::cout << " (ignoring";
            for (const std::string &section : ignored)
                std::cout << ' ' << section;
            std::cout << ')';
        }
        std::cout << '\n';
        return 0;
    }

    std::cout << divergences.size() << " divergence(s): " << paths[0]
              << " vs " << paths[1] << '\n';
    const std::size_t shown =
        std::min(divergences.size(), kMaxReported);
    for (std::size_t i = 0; i < shown; ++i) {
        const Divergence &d = divergences[i];
        std::cout << "  " << d.path << ": " << d.left << " vs "
                  << d.right << '\n';
    }
    if (divergences.size() > shown)
        std::cout << "  ... " << divergences.size() - shown
                  << " more\n";
    return 1;
}
