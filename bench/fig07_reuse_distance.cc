/**
 * @file
 * Fig 7: distribution of access counts between repeated translation
 * requests (reuse distance) for selected benchmarks. Small distances
 * motivate combining translations per walk; large distances argue for
 * big, rarely-evicted caching (observation O3).
 */

#include <iostream>

#include "bench_common.hh"
#include "driver/trace_analysis.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 7", "reuse distance between repeated translations",
        "distances range from a few requests to hundreds of thousands, "
        "so LRU set-associative caching alone cannot capture reuse");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);

    std::vector<RunSpec> specs;
    for (const std::string &wl :
         {std::string("BT"), std::string("FWT"), std::string("MT"),
          std::string("PR"), std::string("SPMV"),
          std::string("FWS")})
        specs.push_back(bench::spec(SystemConfig::mi100(),
                                    TranslationPolicy::baseline(), wl,
                                    ops, /*capture_trace=*/true));
    const std::vector<RunResult> runs = runMany(std::move(specs));

    TablePrinter table({"workload", "repeats", "<=16", "17-256",
                        "257-4K", "4K-64K", ">64K", "median", "p90"});
    for (const RunResult &r : runs) {
        const std::string &wl = r.workload;
        const Log2Histogram h = analyzeReuseDistance(r.iommu.trace);
        auto band = [&](std::uint64_t lo, std::uint64_t hi) {
            const double f =
                h.fractionAtOrBelow(hi) -
                (lo == 0 ? 0.0 : h.fractionAtOrBelow(lo - 1));
            return fmtPct(f);
        };
        table.addRow({wl, std::to_string(h.totalCount()),
                      band(0, 16), band(17, 256), band(257, 4096),
                      band(4097, 65536),
                      fmtPct(1.0 - h.fractionAtOrBelow(65536)),
                      std::to_string(h.quantile(0.5)),
                      std::to_string(h.quantile(0.9))});
    }
    table.print(std::cout);
    return 0;
}
