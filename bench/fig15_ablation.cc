/**
 * @file
 * Fig 15: ablation of HDPAT's techniques -- route-based caching,
 * concentric caching, distributed caching, clustering+rotation, the
 * redirection table, proactive delivery, and the full combination.
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 15", "ablation of HDPAT techniques",
        "route/concentric ~ no gain; distributed 1.08x; "
        "cluster+rotation 1.13x; +redirection 1.18x; +prefetch 1.17x; "
        "full HDPAT 1.57x");

    const std::size_t ops = bench::benchOps(argc, argv, 0.67);
    const SystemConfig cfg = SystemConfig::mi100();

    const std::vector<TranslationPolicy> policies = {
        TranslationPolicy::routeCaching(),
        TranslationPolicy::concentricCaching(),
        TranslationPolicy::distributedCaching(),
        TranslationPolicy::clusterRotation(),
        TranslationPolicy::withRedirection(),
        TranslationPolicy::withPrefetch(),
        TranslationPolicy::hdpat()};

    std::vector<std::pair<SystemConfig, TranslationPolicy>> combos = {
        {cfg, TranslationPolicy::baseline()}};
    for (const auto &pol : policies)
        combos.emplace_back(cfg, pol);
    const auto grid = runSuiteGrid(combos, ops);
    const std::vector<RunResult> &base = grid[0];

    std::vector<std::string> header{"workload"};
    for (const auto &pol : policies)
        header.push_back(pol.name);
    TablePrinter table(std::move(header));

    std::vector<std::vector<double>> all_speedups(policies.size());
    for (std::size_t p = 0; p < policies.size(); ++p)
        all_speedups[p] = speedups(base, grid[p + 1]);

    for (std::size_t w = 0; w < base.size(); ++w) {
        std::vector<std::string> row{base[w].workload};
        for (std::size_t p = 0; p < policies.size(); ++p)
            row.push_back(fmt(all_speedups[p][w]) + "x");
        table.addRow(std::move(row));
    }
    std::vector<std::string> gmean_row{"G-MEAN"};
    for (const auto &sp : all_speedups)
        gmean_row.push_back(fmt(geomean(sp)) + "x");
    table.addRow(std::move(gmean_row));
    table.print(std::cout);
    return 0;
}
