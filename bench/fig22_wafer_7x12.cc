/**
 * @file
 * Fig 22: HDPAT on a larger 7x12 wafer (83 GPMs) -- per-workload
 * speedups and the geometric mean.
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 22", "HDPAT on the 7x12 wafer (83 GPMs)",
        "all workloads improve; geometric mean 1.49x");

    const std::size_t ops = bench::benchOps(argc, argv, 0.67);
    const SystemConfig cfg = SystemConfig::mi100Wafer7x12();

    const auto grid = runSuiteGrid(
        {{cfg, TranslationPolicy::baseline()},
         {cfg, TranslationPolicy::hdpat()}},
        ops);
    const std::vector<RunResult> &base = grid[0];
    const std::vector<RunResult> &hdpat = grid[1];

    TablePrinter table({"workload", "speedup", "offloaded"});
    const auto sp = speedups(base, hdpat);
    for (std::size_t w = 0; w < base.size(); ++w) {
        table.addRow({base[w].workload, fmt(sp[w]) + "x",
                      fmtPct(hdpat[w].offloadedFraction())});
    }
    table.addRow({"G-MEAN", fmt(geomean(sp)) + "x", "-"});
    table.print(std::cout);
    return 0;
}
