/**
 * @file
 * perf_report: work with the "profile" and "latency" sections of
 * hdpat-metrics JSON dumps.
 *
 *   perf_report --extract METRICS.json
 *       Print the embedded profile object alone, for splicing into a
 *       committed BENCH_*.json baseline (perf_snapshot.sh does this).
 *
 *   perf_report --baseline BENCH_fig14.json METRICS.json
 *       Per-subsystem host-time table of the fresh run against the
 *       committed baseline's profile: total milliseconds, ns/call,
 *       and the delta in percent. Exits 0 regardless of the deltas --
 *       the tool reports, a human (or CI annotation) judges.
 *
 *   perf_report --extract-latency METRICS.json
 *       Compact per-stage digest of the "latency" section (counts,
 *       means, p99s, exact end-to-end quantiles), for splicing into
 *       committed baselines next to the profile.
 *
 *   perf_report --latency-diff BASE.json FRESH.json [MAX_PCT]
 *       Per-stage and end-to-end-quantile diff of two latency dumps
 *       (full metrics documents or compact digests, in any mix).
 *       With MAX_PCT, exits 1 on any regression beyond it -- latencies
 *       are simulated ticks, bit-deterministic across machines, so
 *       tight thresholds are meaningful (unlike host-time checks).
 *
 *   perf_report --latency-check METRICS.json
 *       Internal-consistency gate: the exact-quantile reservoir and
 *       the log2 histogram must agree within one bucket at
 *       p50/p95/p99/p999, and stage-conservation violations must be
 *       zero. CI runs this on every latency smoke run.
 *
 * All inputs go through the strict JSON reader, so a malformed or
 * truncated dump fails loudly rather than diffing garbage.
 */

#include <cmath>
#include <cstring>
#include <iostream>
#include <string>

#include "driver/table_printer.hh"
#include "obs/json_reader.hh"
#include "obs/latency.hh"
#include "obs/profiler.hh"

using namespace hdpat;

namespace
{

/** The "profile" object of @p doc; fatal when absent. */
const JsonValue &
profileOf(const JsonValue &doc, const std::string &what)
{
    const JsonValue *profile = doc.find("profile");
    if (!profile) {
        std::cerr << "error: " << what
                  << " has no \"profile\" section (run with "
                     "--profile / HDPAT_PROFILE=1)\n";
        std::exit(1);
    }
    return *profile;
}

struct SectionTotals
{
    std::uint64_t calls = 0;
    std::uint64_t nanos = 0;
};

SectionTotals
sectionOf(const JsonValue &profile, const char *name)
{
    SectionTotals totals;
    const JsonValue *section = profile.at("sections").find(name);
    if (section) {
        totals.calls = section->at("calls").asUint();
        totals.nanos = section->at("nanos").asUint();
    }
    return totals;
}

int
extract(const std::string &path)
{
    const JsonValue doc = parseJsonFileOrDie(path);
    const JsonValue &profile = profileOf(doc, path);

    // Re-emit compactly (one object, stable key order) rather than
    // echoing file bytes, so the output is valid regardless of the
    // source formatting.
    std::cout << "{\"runs\": " << profile.at("runs").asUint()
              << ", \"wall_nanos\": "
              << profile.at("wall_nanos").asUint()
              << ", \"sections\": {";
    bool first = true;
    for (std::size_t i = 0; i < kNumProfSections; ++i) {
        const char *name =
            profSectionName(static_cast<ProfSection>(i));
        const SectionTotals totals = sectionOf(profile, name);
        std::cout << (first ? "" : ", ") << '"' << name
                  << "\": {\"calls\": " << totals.calls
                  << ", \"nanos\": " << totals.nanos << '}';
        first = false;
    }
    std::cout << "}}\n";
    return 0;
}

int
diff(const std::string &baseline_path, const std::string &fresh_path)
{
    const JsonValue baseline_doc = parseJsonFileOrDie(baseline_path);
    const JsonValue fresh_doc = parseJsonFileOrDie(fresh_path);
    const JsonValue &base = profileOf(baseline_doc, baseline_path);
    const JsonValue &fresh = profileOf(fresh_doc, fresh_path);

    std::cout << "host self-profile: " << fresh_path << " vs baseline "
              << baseline_path << "\n";
    std::cout << "  baseline: " << base.at("runs").asUint()
              << " run(s), "
              << fmt(static_cast<double>(
                         base.at("wall_nanos").asUint()) /
                         1e6,
                     1)
              << " ms wall; fresh: " << fresh.at("runs").asUint()
              << " run(s), "
              << fmt(static_cast<double>(
                         fresh.at("wall_nanos").asUint()) /
                         1e6,
                     1)
              << " ms wall\n\n";

    TablePrinter table({"section", "baseline ms", "fresh ms", "delta",
                        "baseline ns/call", "fresh ns/call"});
    for (std::size_t i = 0; i < kNumProfSections; ++i) {
        const char *name =
            profSectionName(static_cast<ProfSection>(i));
        const SectionTotals b = sectionOf(base, name);
        const SectionTotals f = sectionOf(fresh, name);
        const double bms = static_cast<double>(b.nanos) / 1e6;
        const double fms = static_cast<double>(f.nanos) / 1e6;
        std::string delta = "-";
        if (b.nanos > 0)
            delta = fmtPct(fms / bms - 1.0);
        const auto per_call = [](const SectionTotals &s) {
            return s.calls ? fmt(static_cast<double>(s.nanos) /
                                     static_cast<double>(s.calls),
                                 0)
                           : std::string("-");
        };
        table.addRow({name, fmt(bms, 1), fmt(fms, 1), delta,
                      per_call(b), per_call(f)});
    }
    table.print(std::cout);
    return 0;
}

/**
 * CI gate: fail (exit 1) when @p section's fresh nanos-per-call
 * exceeds the baseline's by more than @p max_regress_pct percent.
 * Per-call time is the right unit for a noisy runner: it is
 * insensitive to how many events the fixed-seed run happens to
 * execute, and the threshold absorbs machine-to-machine variance.
 */
int
check(const char *section, const std::string &pct_text,
      const std::string &baseline_path, const std::string &fresh_path)
{
    const double max_regress_pct = std::stod(pct_text);
    const JsonValue baseline_doc = parseJsonFileOrDie(baseline_path);
    const JsonValue fresh_doc = parseJsonFileOrDie(fresh_path);
    const SectionTotals b =
        sectionOf(profileOf(baseline_doc, baseline_path), section);
    const SectionTotals f =
        sectionOf(profileOf(fresh_doc, fresh_path), section);
    if (b.calls == 0 || f.calls == 0) {
        std::cerr << "error: section \"" << section
                  << "\" missing or empty (baseline calls=" << b.calls
                  << ", fresh calls=" << f.calls << ")\n";
        return 1;
    }
    const double base_per_call =
        static_cast<double>(b.nanos) / static_cast<double>(b.calls);
    const double fresh_per_call =
        static_cast<double>(f.nanos) / static_cast<double>(f.calls);
    const double delta_pct =
        (fresh_per_call / base_per_call - 1.0) * 100.0;
    std::cout << section << ": baseline " << fmt(base_per_call, 0)
              << " ns/call (" << b.calls << " calls), fresh "
              << fmt(fresh_per_call, 0) << " ns/call (" << f.calls
              << " calls), delta " << fmt(delta_pct, 1)
              << "% (limit +" << fmt(max_regress_pct, 0) << "%)\n";
    if (delta_pct > max_regress_pct) {
        std::cerr << "error: " << section
                  << " regressed beyond the budget\n";
        return 1;
    }
    return 0;
}

/**
 * CI gate over an exported counter (e.g. engine.events_scheduled):
 * fail (exit 1) when the fresh value exceeds the baseline's by more
 * than @p max_regress_pct percent. Counters are simulated quantities,
 * deterministic for a fixed seed, so unlike host-time checks the
 * threshold only needs to absorb intentional model drift -- a silently
 * un-fused NoC delivery path (~20% more scheduled events on the
 * audited reference run) trips it immediately.
 *
 * The baseline may be a BENCH_*.json record carrying a "counters"
 * object (perf_snapshot.sh embeds one from an audited run) or a full
 * metrics dump; the fresh side is a metrics dump.
 */
int
counterCheck(const char *name, const std::string &pct_text,
             const std::string &baseline_path,
             const std::string &fresh_path)
{
    const double max_regress_pct = std::stod(pct_text);
    const auto counterOf = [&](const std::string &path) {
        const JsonValue doc = parseJsonFileOrDie(path);
        const JsonValue *counters = doc.find("counters");
        const JsonValue *value =
            counters ? counters->find(name) : nullptr;
        if (!value) {
            std::cerr << "error: " << path << " has no counter \""
                      << name << "\"\n";
            std::exit(1);
        }
        return value->asUint();
    };
    const std::uint64_t base = counterOf(baseline_path);
    const std::uint64_t fresh = counterOf(fresh_path);
    if (base == 0) {
        std::cerr << "error: baseline counter \"" << name
                  << "\" is zero; nothing to compare\n";
        return 1;
    }
    const double delta_pct = (static_cast<double>(fresh) /
                                  static_cast<double>(base) -
                              1.0) * 100.0;
    std::cout << name << ": baseline " << base << ", fresh " << fresh
              << ", delta " << fmt(delta_pct, 1) << "% (limit +"
              << fmt(max_regress_pct, 0) << "%)\n";
    if (delta_pct > max_regress_pct) {
        std::cerr << "error: " << name
                  << " regressed beyond the budget\n";
        return 1;
    }
    return 0;
}

// --- Latency-section tooling ------------------------------------------

/** One quantile's label and probability, in report order. */
struct QuantileSpec
{
    const char *name;
    double q;
};

constexpr QuantileSpec kQuantiles[] = {
    {"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}, {"p999", 0.999}};

/** Log2 bucket index holding @p value (matches Log2Histogram). */
std::size_t
bucketIndexOf(std::uint64_t value)
{
    if (value == 0)
        return 0;
    std::size_t idx = 0;
    while (value) {
        value >>= 1;
        ++idx;
    }
    return idx; // floor(log2(v)) + 1.
}

/** Histogram quantile recomputed from exported {low,high,count} rows. */
std::uint64_t
histQuantileOf(const JsonValue &hist, double q)
{
    const std::uint64_t total = hist.at("total").asUint();
    if (total == 0)
        return 0;
    const double target = q * static_cast<double>(total);
    double acc = 0.0;
    std::uint64_t last_high = 0;
    for (const JsonValue &bucket : hist.at("buckets").elements) {
        acc += static_cast<double>(bucket.at("count").asUint());
        last_high = bucket.at("high").asUint();
        if (acc >= target)
            return last_high;
    }
    return last_high;
}

/** Flat per-stage + end-to-end digest, shape-agnostic. */
struct LatencyDigest
{
    std::uint64_t spans = 0;
    std::uint64_t sampleN = 1;
    std::uint64_t conservationViolations = 0;
    struct Stage
    {
        std::uint64_t count = 0;
        double mean = 0.0;
        std::uint64_t p99 = 0;
    };
    Stage stages[kNumLatencyStages];
    double endToEndMean = 0.0;
    std::uint64_t quantiles[4] = {0, 0, 0, 0};
};

/**
 * The latency object of @p doc: either the document *is* a compact
 * digest, or it holds one (BENCH baselines) or a full section (metrics
 * dumps) under "latency". Fatal when absent.
 */
const JsonValue &
latencyOf(const JsonValue &doc, const std::string &what)
{
    if (const JsonValue *latency = doc.find("latency"))
        return *latency;
    if (doc.find("spans") && doc.find("stages"))
        return doc;
    std::cerr << "error: " << what
              << " has no \"latency\" section (run with --latency / "
                 "HDPAT_LATENCY=1)\n";
    std::exit(1);
}

/** Parse either the full exporter shape or the compact digest. */
LatencyDigest
digestOf(const JsonValue &latency)
{
    LatencyDigest d;
    d.spans = latency.at("spans").asUint();
    if (const JsonValue *n = latency.find("sample_n"))
        d.sampleN = n->asUint();
    if (const JsonValue *v = latency.find("conservation_violations"))
        d.conservationViolations = v->asUint();

    const JsonValue &stages = latency.at("stages");
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        const char *name =
            latencyStageName(static_cast<LatencyStage>(s));
        const JsonValue *stage = stages.find(name);
        if (!stage)
            continue;
        if (const JsonValue *summary = stage->find("summary")) {
            // Full exporter shape.
            d.stages[s].count = summary->at("count").asUint();
            d.stages[s].mean = summary->at("mean").asNumber();
            d.stages[s].p99 =
                histQuantileOf(stage->at("histogram"), 0.99);
        } else {
            d.stages[s].count = stage->at("count").asUint();
            d.stages[s].mean = stage->at("mean").asNumber();
            d.stages[s].p99 = stage->at("p99").asUint();
        }
    }

    const JsonValue &e2e = latency.at("end_to_end");
    if (const JsonValue *summary = e2e.find("summary")) {
        d.endToEndMean = summary->at("mean").asNumber();
        const JsonValue &quantiles = e2e.at("quantiles");
        for (std::size_t i = 0; i < 4; ++i)
            d.quantiles[i] = quantiles.at(kQuantiles[i].name).asUint();
    } else {
        d.endToEndMean = e2e.at("mean").asNumber();
        for (std::size_t i = 0; i < 4; ++i)
            d.quantiles[i] = e2e.at(kQuantiles[i].name).asUint();
    }
    return d;
}

int
extractLatency(const std::string &path)
{
    const JsonValue doc = parseJsonFileOrDie(path);
    const LatencyDigest d = digestOf(latencyOf(doc, path));

    std::cout << "{\"spans\": " << d.spans << ", \"sample_n\": "
              << d.sampleN << ", \"stages\": {";
    bool first = true;
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        std::cout << (first ? "" : ", ") << '"'
                  << latencyStageName(static_cast<LatencyStage>(s))
                  << "\": {\"count\": " << d.stages[s].count
                  << ", \"mean\": " << d.stages[s].mean
                  << ", \"p99\": " << d.stages[s].p99 << '}';
        first = false;
    }
    std::cout << "}, \"end_to_end\": {\"mean\": " << d.endToEndMean;
    for (std::size_t i = 0; i < 4; ++i)
        std::cout << ", \"" << kQuantiles[i].name
                  << "\": " << d.quantiles[i];
    std::cout << "}}\n";
    return 0;
}

int
latencyDiff(const std::string &baseline_path,
            const std::string &fresh_path, const char *pct_text)
{
    const JsonValue baseline_doc = parseJsonFileOrDie(baseline_path);
    const JsonValue fresh_doc = parseJsonFileOrDie(fresh_path);
    const LatencyDigest base =
        digestOf(latencyOf(baseline_doc, baseline_path));
    const LatencyDigest fresh =
        digestOf(latencyOf(fresh_doc, fresh_path));
    const double max_regress_pct =
        pct_text ? std::stod(pct_text) : -1.0;

    std::cout << "latency anatomy: " << fresh_path << " vs baseline "
              << baseline_path << "\n  baseline: " << base.spans
              << " spans (sample 1/" << base.sampleN
              << "); fresh: " << fresh.spans << " spans (sample 1/"
              << fresh.sampleN << ")\n\n";

    bool regressed = false;
    // Relative deltas on sub-tick means are noise; only stages that
    // cost at least one tick on average can regress the gate.
    const auto gate = [&](double base_v, double fresh_v) {
        if (max_regress_pct < 0.0 || base_v < 1.0)
            return;
        if ((fresh_v / base_v - 1.0) * 100.0 > max_regress_pct)
            regressed = true;
    };

    TablePrinter table({"stage", "baseline mean", "fresh mean",
                        "delta", "baseline p99", "fresh p99"});
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        const LatencyDigest::Stage &b = base.stages[s];
        const LatencyDigest::Stage &f = fresh.stages[s];
        if (b.count == 0 && f.count == 0)
            continue;
        std::string delta = "-";
        if (b.mean > 0.0)
            delta = fmtPct(f.mean / b.mean - 1.0);
        gate(b.mean, f.mean);
        gate(static_cast<double>(b.p99), static_cast<double>(f.p99));
        table.addRow(
            {latencyStageName(static_cast<LatencyStage>(s)),
             fmt(b.mean, 1), fmt(f.mean, 1), delta,
             std::to_string(b.p99), std::to_string(f.p99)});
    }
    table.print(std::cout);

    TablePrinter e2e({"end-to-end", "baseline", "fresh", "delta"});
    const auto row = [&](const char *name, double b, double f) {
        std::string delta = "-";
        if (b > 0.0)
            delta = fmtPct(f / b - 1.0);
        gate(b, f);
        e2e.addRow({name, fmt(b, 1), fmt(f, 1), delta});
    };
    row("mean", base.endToEndMean, fresh.endToEndMean);
    for (std::size_t i = 0; i < 4; ++i)
        row(kQuantiles[i].name,
            static_cast<double>(base.quantiles[i]),
            static_cast<double>(fresh.quantiles[i]));
    std::cout << "\n";
    e2e.print(std::cout);

    if (regressed) {
        std::cerr << "error: latency regressed beyond +"
                  << fmt(max_regress_pct, 1) << "%\n";
        return 1;
    }
    return 0;
}

int
latencyCheck(const std::string &path)
{
    const JsonValue doc = parseJsonFileOrDie(path);
    const JsonValue &latency = latencyOf(doc, path);
    const JsonValue *e2e = latency.find("end_to_end");
    if (!e2e || !e2e->find("histogram")) {
        std::cerr << "error: " << path
                  << " is a compact digest; --latency-check needs the "
                     "full metrics dump\n";
        return 1;
    }
    if (latency.at("spans").asUint() == 0) {
        std::cerr << "error: " << path
                  << " holds zero spans; nothing to check\n";
        return 1;
    }
    int failures = 0;
    if (latency.at("conservation_violations").asUint() != 0) {
        std::cerr << "error: conservation_violations = "
                  << latency.at("conservation_violations").asUint()
                  << " (stage durations must sum to end-to-end)\n";
        ++failures;
    }
    const JsonValue &hist = e2e->at("histogram");
    const JsonValue &quantiles = e2e->at("quantiles");
    for (const QuantileSpec &spec : kQuantiles) {
        const std::uint64_t from_hist = histQuantileOf(hist, spec.q);
        const std::uint64_t exact =
            quantiles.at(spec.name).asUint();
        const std::size_t hist_bucket = bucketIndexOf(from_hist);
        const std::size_t exact_bucket = bucketIndexOf(exact);
        const std::size_t gap = hist_bucket > exact_bucket
                                    ? hist_bucket - exact_bucket
                                    : exact_bucket - hist_bucket;
        std::cout << spec.name << ": exact " << exact << " (bucket "
                  << exact_bucket << "), histogram " << from_hist
                  << " (bucket " << hist_bucket << ")\n";
        if (gap > 1) {
            std::cerr << "error: " << spec.name
                      << " reservoir and histogram disagree by "
                      << gap << " log2 buckets\n";
            ++failures;
        }
    }
    return failures ? 1 : 0;
}

void
usage()
{
    std::cerr
        << "usage: perf_report --extract METRICS.json\n"
           "       perf_report --baseline BENCH.json METRICS.json\n"
           "       perf_report --check SECTION MAX_PCT BENCH.json "
           "METRICS.json\n"
           "       perf_report --counter-check NAME MAX_PCT BENCH.json "
           "METRICS.json\n"
           "       perf_report --extract-latency METRICS.json\n"
           "       perf_report --latency-diff BASE.json FRESH.json "
           "[MAX_PCT]\n"
           "       perf_report --latency-check METRICS.json\n"
           "Reads the \"profile\" section the host self-profiler "
           "exports (--profile / HDPAT_PROFILE=1) and the \"latency\" "
           "section latency attribution exports (--latency / "
           "HDPAT_LATENCY=1). --check exits nonzero when SECTION's "
           "ns/call regressed more than MAX_PCT percent vs the "
           "baseline; --counter-check does the same for an exported "
           "counter (e.g. engine.events_scheduled) against the "
           "baseline's embedded \"counters\" object; "
           "--latency-diff with MAX_PCT does the same for "
           "per-stage simulated ticks; --latency-check exits nonzero "
           "when the exact-quantile reservoir and the histogram "
           "disagree by more than one log2 bucket.\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::strcmp(argv[1], "--extract") == 0)
        return extract(argv[2]);
    if (argc == 4 && std::strcmp(argv[1], "--baseline") == 0)
        return diff(argv[2], argv[3]);
    if (argc == 6 && std::strcmp(argv[1], "--check") == 0)
        return check(argv[2], argv[3], argv[4], argv[5]);
    if (argc == 6 && std::strcmp(argv[1], "--counter-check") == 0)
        return counterCheck(argv[2], argv[3], argv[4], argv[5]);
    if (argc == 3 && std::strcmp(argv[1], "--extract-latency") == 0)
        return extractLatency(argv[2]);
    if ((argc == 4 || argc == 5) &&
        std::strcmp(argv[1], "--latency-diff") == 0)
        return latencyDiff(argv[2], argv[3],
                           argc == 5 ? argv[4] : nullptr);
    if (argc == 3 && std::strcmp(argv[1], "--latency-check") == 0)
        return latencyCheck(argv[2]);
    usage();
    return 1;
}
