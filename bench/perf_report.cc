/**
 * @file
 * perf_report: work with the "profile" section of hdpat-metrics-v1
 * JSON dumps (the host self-profiler's output).
 *
 *   perf_report --extract METRICS.json
 *       Print the embedded profile object alone, for splicing into a
 *       committed BENCH_*.json baseline (perf_snapshot.sh does this).
 *
 *   perf_report --baseline BENCH_fig14.json METRICS.json
 *       Per-subsystem host-time table of the fresh run against the
 *       committed baseline's profile: total milliseconds, ns/call,
 *       and the delta in percent. Exits 0 regardless of the deltas --
 *       the tool reports, a human (or CI annotation) judges.
 *
 * Both inputs go through the strict JSON reader, so a malformed or
 * truncated dump fails loudly rather than diffing garbage.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "driver/table_printer.hh"
#include "obs/json_reader.hh"
#include "obs/profiler.hh"

using namespace hdpat;

namespace
{

/** The "profile" object of @p doc; fatal when absent. */
const JsonValue &
profileOf(const JsonValue &doc, const std::string &what)
{
    const JsonValue *profile = doc.find("profile");
    if (!profile) {
        std::cerr << "error: " << what
                  << " has no \"profile\" section (run with "
                     "--profile / HDPAT_PROFILE=1)\n";
        std::exit(1);
    }
    return *profile;
}

struct SectionTotals
{
    std::uint64_t calls = 0;
    std::uint64_t nanos = 0;
};

SectionTotals
sectionOf(const JsonValue &profile, const char *name)
{
    SectionTotals totals;
    const JsonValue *section = profile.at("sections").find(name);
    if (section) {
        totals.calls = section->at("calls").asUint();
        totals.nanos = section->at("nanos").asUint();
    }
    return totals;
}

int
extract(const std::string &path)
{
    const JsonValue doc = parseJsonFileOrDie(path);
    const JsonValue &profile = profileOf(doc, path);

    // Re-emit compactly (one object, stable key order) rather than
    // echoing file bytes, so the output is valid regardless of the
    // source formatting.
    std::cout << "{\"runs\": " << profile.at("runs").asUint()
              << ", \"wall_nanos\": "
              << profile.at("wall_nanos").asUint()
              << ", \"sections\": {";
    bool first = true;
    for (std::size_t i = 0; i < kNumProfSections; ++i) {
        const char *name =
            profSectionName(static_cast<ProfSection>(i));
        const SectionTotals totals = sectionOf(profile, name);
        std::cout << (first ? "" : ", ") << '"' << name
                  << "\": {\"calls\": " << totals.calls
                  << ", \"nanos\": " << totals.nanos << '}';
        first = false;
    }
    std::cout << "}}\n";
    return 0;
}

int
diff(const std::string &baseline_path, const std::string &fresh_path)
{
    const JsonValue baseline_doc = parseJsonFileOrDie(baseline_path);
    const JsonValue fresh_doc = parseJsonFileOrDie(fresh_path);
    const JsonValue &base = profileOf(baseline_doc, baseline_path);
    const JsonValue &fresh = profileOf(fresh_doc, fresh_path);

    std::cout << "host self-profile: " << fresh_path << " vs baseline "
              << baseline_path << "\n";
    std::cout << "  baseline: " << base.at("runs").asUint()
              << " run(s), "
              << fmt(static_cast<double>(
                         base.at("wall_nanos").asUint()) /
                         1e6,
                     1)
              << " ms wall; fresh: " << fresh.at("runs").asUint()
              << " run(s), "
              << fmt(static_cast<double>(
                         fresh.at("wall_nanos").asUint()) /
                         1e6,
                     1)
              << " ms wall\n\n";

    TablePrinter table({"section", "baseline ms", "fresh ms", "delta",
                        "baseline ns/call", "fresh ns/call"});
    for (std::size_t i = 0; i < kNumProfSections; ++i) {
        const char *name =
            profSectionName(static_cast<ProfSection>(i));
        const SectionTotals b = sectionOf(base, name);
        const SectionTotals f = sectionOf(fresh, name);
        const double bms = static_cast<double>(b.nanos) / 1e6;
        const double fms = static_cast<double>(f.nanos) / 1e6;
        std::string delta = "-";
        if (b.nanos > 0)
            delta = fmtPct(fms / bms - 1.0);
        const auto per_call = [](const SectionTotals &s) {
            return s.calls ? fmt(static_cast<double>(s.nanos) /
                                     static_cast<double>(s.calls),
                                 0)
                           : std::string("-");
        };
        table.addRow({name, fmt(bms, 1), fmt(fms, 1), delta,
                      per_call(b), per_call(f)});
    }
    table.print(std::cout);
    return 0;
}

/**
 * CI gate: fail (exit 1) when @p section's fresh nanos-per-call
 * exceeds the baseline's by more than @p max_regress_pct percent.
 * Per-call time is the right unit for a noisy runner: it is
 * insensitive to how many events the fixed-seed run happens to
 * execute, and the threshold absorbs machine-to-machine variance.
 */
int
check(const char *section, const std::string &pct_text,
      const std::string &baseline_path, const std::string &fresh_path)
{
    const double max_regress_pct = std::stod(pct_text);
    const JsonValue baseline_doc = parseJsonFileOrDie(baseline_path);
    const JsonValue fresh_doc = parseJsonFileOrDie(fresh_path);
    const SectionTotals b =
        sectionOf(profileOf(baseline_doc, baseline_path), section);
    const SectionTotals f =
        sectionOf(profileOf(fresh_doc, fresh_path), section);
    if (b.calls == 0 || f.calls == 0) {
        std::cerr << "error: section \"" << section
                  << "\" missing or empty (baseline calls=" << b.calls
                  << ", fresh calls=" << f.calls << ")\n";
        return 1;
    }
    const double base_per_call =
        static_cast<double>(b.nanos) / static_cast<double>(b.calls);
    const double fresh_per_call =
        static_cast<double>(f.nanos) / static_cast<double>(f.calls);
    const double delta_pct =
        (fresh_per_call / base_per_call - 1.0) * 100.0;
    std::cout << section << ": baseline " << fmt(base_per_call, 0)
              << " ns/call (" << b.calls << " calls), fresh "
              << fmt(fresh_per_call, 0) << " ns/call (" << f.calls
              << " calls), delta " << fmt(delta_pct, 1)
              << "% (limit +" << fmt(max_regress_pct, 0) << "%)\n";
    if (delta_pct > max_regress_pct) {
        std::cerr << "error: " << section
                  << " regressed beyond the budget\n";
        return 1;
    }
    return 0;
}

void
usage()
{
    std::cerr
        << "usage: perf_report --extract METRICS.json\n"
           "       perf_report --baseline BENCH.json METRICS.json\n"
           "       perf_report --check SECTION MAX_PCT BENCH.json "
           "METRICS.json\n"
           "Reads the \"profile\" section the host self-profiler "
           "exports (--profile / HDPAT_PROFILE=1). --check exits "
           "nonzero when SECTION's ns/call regressed more than "
           "MAX_PCT percent vs the baseline.\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::strcmp(argv[1], "--extract") == 0)
        return extract(argv[2]);
    if (argc == 4 && std::strcmp(argv[1], "--baseline") == 0)
        return diff(argv[2], argv[3]);
    if (argc == 6 && std::strcmp(argv[1], "--check") == 0)
        return check(argv[2], argv[3], argv[4], argv[5]);
    usage();
    return 1;
}
