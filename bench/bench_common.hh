/**
 * @file
 * Shared plumbing for the per-figure bench harnesses: banner printing
 * (with the paper's reported result for comparison), op-count and
 * worker-count selection, and common sweep loops.
 *
 * Every harness runs its sweep grid through runMany()'s worker pool:
 * `--jobs N` (or HDPAT_JOBS=N) runs N simulations concurrently with
 * results identical to serial execution.
 *
 * Observability rides along for free: runs started through run() and
 * runMany() honour HDPAT_METRICS_JSON, HDPAT_TRACE_OUT,
 * HDPAT_TRACE_SAMPLE, and HDPAT_HEARTBEAT, so any figure harness can
 * emit a metrics dump or a Chrome trace without code changes.
 * Multi-run harnesses write one file per run: the shared output path
 * gets a "-<run_index>" suffix (see driver/parallel.hh).
 */

#ifndef HDPAT_BENCH_BENCH_COMMON_HH
#define HDPAT_BENCH_BENCH_COMMON_HH

#include <cstddef>
#include <string>
#include <vector>

#include "driver/experiment.hh"
#include "driver/parallel.hh"
#include "driver/runner.hh"
#include "driver/table_printer.hh"
#include "workloads/suite.hh"

namespace hdpat::bench
{

/**
 * Print the figure banner: what the paper reports and how this harness
 * reproduces it. Every bench starts with this so the output is
 * self-describing.
 */
void printBanner(const std::string &figure, const std::string &what,
                 const std::string &paper_result);

/**
 * Ops per GPM for this harness: @p fraction of the global default
 * (HDPAT_BENCH_SCALE-scaled), overridable with the first positional
 * argument. Also applies the `--jobs N` / `--jobs=N` flag
 * (setDefaultJobs) so every harness gets the parallel runner without
 * per-bench wiring.
 */
std::size_t benchOps(int argc, char **argv, double fraction = 1.0);

/** One RunSpec at the bench's op count (for runMany grids). */
RunSpec spec(const SystemConfig &cfg, const TranslationPolicy &pol,
             const std::string &workload, std::size_t ops,
             bool capture_trace = false);

/** Run one workload under one policy at the bench's op count. */
RunResult run(const SystemConfig &cfg, const TranslationPolicy &pol,
              const std::string &workload, std::size_t ops,
              bool capture_trace = false);

} // namespace hdpat::bench

#endif // HDPAT_BENCH_BENCH_COMMON_HH
