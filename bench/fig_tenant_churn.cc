/**
 * @file
 * fig_tenant_churn: the multi-tenant serving regime. Sweeps tenant
 * count x context-switch rate at a fixed page-churn rate and reports
 * how much each policy degrades relative to its own single-tenant,
 * zero-churn run -- the regime where translation entries die young
 * (shot down or switched away) before their reuse pays back.
 *
 * Every cell's numbers come from the run's exported metrics JSON
 * (parsed back via the strict reader), not from in-process state, so
 * the figure doubles as an end-to-end check of the tenancy counters in
 * the export schema. The per-cell dumps are left on disk (under
 * HDPAT_TENANT_CHURN_DIR, default ".") for perf_snapshot.sh and
 * hdpat_diff.
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hh"
#include "obs/json_reader.hh"

using namespace hdpat;

namespace
{

/** Where the per-cell metrics dumps go. */
std::string
dumpDir()
{
    const char *env = std::getenv("HDPAT_TENANT_CHURN_DIR");
    return env && *env ? env : ".";
}

struct Cell
{
    Tick totalTicks = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t pagesChurned = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t staleInstallsBlocked = 0;
};

/** Run one cell, export its metrics JSON, and read it back. */
Cell
runCell(const SystemConfig &cfg, const TranslationPolicy &pol,
        std::size_t ops, std::uint32_t tenants,
        std::uint64_t switch_rate, std::uint64_t churn_rate)
{
    std::ostringstream path;
    path << dumpDir() << "/fig_tenant_churn." << pol.name << ".t"
         << tenants << ".s" << switch_rate << ".json";

    RunSpec spec = bench::spec(cfg, pol, "PR", ops);
    spec.tenancy = TenancySpec{};
    spec.tenancy.asidCount = tenants;
    spec.tenancy.switchRatePerMTicks = switch_rate;
    spec.tenancy.churnRatePerMTicks = churn_rate;
    spec.obs.metricsJsonPath = path.str();
    runOnce(spec);

    // The figure is built from the export, not the RunResult: the
    // JSON is the contract downstream tooling consumes.
    const JsonValue doc = parseJsonFileOrDie(path.str());
    const JsonValue &counters = doc.at("counters");
    const auto counter = [&counters](const char *name) {
        const JsonValue *v = counters.find(name);
        return v ? v->asUint() : 0;
    };
    Cell cell;
    cell.totalTicks = doc.at("run").at("total_ticks").asUint();
    cell.contextSwitches = counter("tenancy.context_switches");
    cell.pagesChurned = counter("tenancy.pages_churned");
    cell.pageFaults = counter("iommu.page_faults");
    cell.staleInstallsBlocked = counter("gpm.stale_installs_blocked");
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "fig_tenant_churn", "tenant count x switch rate degradation",
        "not in the paper -- the ROADMAP's serving-regime extension: "
        "entries die young under churn, so distributed caching's "
        "advantage over the central IOMMU narrows");

    const std::size_t ops = bench::benchOps(argc, argv, 0.25);
    const SystemConfig cfg = SystemConfig::mi100();

    // Fixed churn: pages are unmapped and shot down throughout; the
    // swept dimension is how often the wafer changes address space.
    constexpr std::uint64_t kChurnRate = 100;
    const std::uint32_t tenant_counts[] = {2, 4, 8};
    const std::uint64_t switch_rates[] = {0, 200, 1000};

    const std::vector<TranslationPolicy> policies = {
        TranslationPolicy::baseline(), TranslationPolicy::hdpat()};

    for (const TranslationPolicy &pol : policies) {
        // The policy's own single-tenant, zero-churn reference.
        const Cell ref = runCell(cfg, pol, ops, 1, 0, 0);

        TablePrinter table({"tenants", "switch=0/Mt", "switch=200/Mt",
                            "switch=1000/Mt"});
        for (const std::uint32_t tenants : tenant_counts) {
            std::vector<std::string> row = {std::to_string(tenants)};
            for (const std::uint64_t rate : switch_rates) {
                const Cell cell =
                    runCell(cfg, pol, ops, tenants, rate, kChurnRate);
                const double slowdown =
                    static_cast<double>(cell.totalTicks) /
                    static_cast<double>(ref.totalTicks);
                std::ostringstream os;
                os << fmt(slowdown) << "x (" << cell.pagesChurned
                   << " churned, " << cell.pageFaults << " faults, "
                   << cell.staleInstallsBlocked << " stale blocked)";
                row.push_back(os.str());
            }
            table.addRow(row);
        }
        std::cout << "policy: " << pol.name << " (reference "
                  << ref.totalTicks << " ticks single-tenant; churn "
                  << kChurnRate << "/Mtick in every swept cell)\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "cells are slowdown vs the same policy's "
                 "single-tenant run; dumps in " << dumpDir() << "\n";
    return 0;
}
