/**
 * @file
 * google-benchmark comparison of the two EventQueue implementations
 * (calendar wheel vs legacy binary heap) at the delta mixes the
 * simulator actually generates:
 *
 *  - hot mix: the handful of short fixed deltas that dominate event
 *    traffic (NoC hop latency, TLB/IOMMU pipeline stages, HBM
 *    latency), with same-tick pileups,
 *  - deep steady state: schedule/pop churn against a large pending
 *    population, where heap sift depth (and its 136-byte entry moves)
 *    is at its worst,
 *  - far future: observer-style deltas beyond the wheel width, the
 *    calendar queue's overflow tier.
 *
 * Each benchmark reports items/s where an item is one schedule+pop
 * pair. perf_snapshot.sh records the suite into BENCH_micro.json.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <cstddef>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace hdpat
{
namespace
{

EventQueueImpl
implArg(const benchmark::State &state)
{
    return state.range(0) == 0 ? EventQueueImpl::Calendar
                               : EventQueueImpl::Heap;
}

void
setImplLabel(benchmark::State &state)
{
    state.SetLabel(eventQueueImplName(implArg(state)));
}

/** The simulator's short fixed deltas, weighted toward NoC hops. */
constexpr std::array<Tick, 8> kHotDeltas = {1, 1, 2, 3, 4, 12, 40, 160};

/**
 * Hot mix at a modest pending population: schedule a burst with the
 * fixed short deltas (plus same-tick ties), then drain it, as the
 * engine does around each dispatched event.
 */
void
BM_EventQueueHotMix(benchmark::State &state)
{
    setImplLabel(state);
    EventQueue q(implArg(state));
    q.reserve(1024);
    Rng rng(42);
    Tick now = 0;
    for (auto _ : state) {
        (void)_;
        for (int i = 0; i < 64; ++i) {
            const Tick delta = rng.chance(0.15)
                                   ? 0
                                   : kHotDeltas[rng.uniformInt(
                                         kHotDeltas.size())];
            q.schedule(now + delta, [] {});
        }
        for (int i = 0; i < 64; ++i) {
            q.pop(now)();
        }
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueHotMix)->Arg(0)->Arg(1);

/**
 * Steady-state churn against a deep pending population (the wafer at
 * full tilt: every GPM's outstanding window in flight). One schedule
 * + one pop per item keeps the population constant, so the heap works
 * at its full sift depth while the wheel stays O(1).
 */
void
BM_EventQueueDeepSteadyState(benchmark::State &state)
{
    setImplLabel(state);
    const std::size_t population =
        static_cast<std::size_t>(state.range(1));
    EventQueue q(implArg(state));
    q.reserve(population + 64);
    Rng rng(7);
    Tick now = 0;
    for (std::size_t i = 0; i < population; ++i)
        q.schedule(now + kHotDeltas[rng.uniformInt(kHotDeltas.size())],
                   [] {});
    for (auto _ : state) {
        (void)_;
        q.pop(now)();
        q.schedule(now + kHotDeltas[rng.uniformInt(kHotDeltas.size())],
                   [] {});
    }
    state.SetItemsProcessed(state.iterations());
    q.clear();
}
BENCHMARK(BM_EventQueueDeepSteadyState)
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Args({0, 32768})
    ->Args({1, 32768});

/**
 * Far-future traffic: observer-style deltas beyond the 4096-tick
 * wheel, so every calendar event rides the overflow min-heap. This is
 * the calendar queue's worst case; it must stay within a small factor
 * of the legacy heap, which handles all deltas identically.
 */
void
BM_EventQueueFarFuture(benchmark::State &state)
{
    setImplLabel(state);
    EventQueue q(implArg(state));
    q.reserve(1024);
    Rng rng(99);
    Tick now = 0;
    for (auto _ : state) {
        (void)_;
        for (int i = 0; i < 64; ++i)
            q.schedule(now + 5000 + rng.uniformInt(2'000'000), [] {});
        for (int i = 0; i < 64; ++i)
            q.pop(now)();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueFarFuture)->Arg(0)->Arg(1);

} // namespace
} // namespace hdpat

BENCHMARK_MAIN();
