/**
 * @file
 * Fig 20: system page-size sensitivity. Larger pages reduce
 * translation requests for the baseline; HDPAT keeps its advantage at
 * every page size (geometric mean over the suite, normalized to the
 * 4KB baseline).
 */

#include <iostream>

#include "bench_common.hh"
#include "config/gpu_presets.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 20", "page-size sensitivity (geometric mean)",
        "larger pages help the baseline; HDPAT maintains ~50% "
        "advantage across all page sizes");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);

    // The 4KB baseline anchors all normalizations.
    SystemConfig cfg4k = SystemConfig::mi100();
    const auto base4k =
        runSuite(cfg4k, TranslationPolicy::baseline(), ops);

    TablePrinter table({"page size", "baseline", "hdpat",
                        "hdpat advantage"});
    for (const PageSizePoint &point : pageSizeSweep()) {
        SystemConfig cfg = SystemConfig::mi100();
        cfg.pageShift = point.pageShift;
        cfg.name = "MI100-" + point.label;

        const auto base =
            runSuite(cfg, TranslationPolicy::baseline(), ops);
        const auto hdpat =
            runSuite(cfg, TranslationPolicy::hdpat(), ops);

        const double base_norm = geomeanSpeedup(base4k, base);
        const double hdpat_norm = geomeanSpeedup(base4k, hdpat);
        table.addRow({point.label, fmt(base_norm) + "x",
                      fmt(hdpat_norm) + "x",
                      fmt(hdpat_norm / base_norm) + "x"});
    }
    table.print(std::cout);
    std::cout << "\n(all values normalized to the 4KB baseline)\n";
    return 0;
}
