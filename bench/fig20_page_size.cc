/**
 * @file
 * Fig 20: system page-size sensitivity. Larger pages reduce
 * translation requests for the baseline; HDPAT keeps its advantage at
 * every page size (geometric mean over the suite, normalized to the
 * 4KB baseline).
 */

#include <iostream>

#include "bench_common.hh"
#include "config/gpu_presets.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 20", "page-size sensitivity (geometric mean)",
        "larger pages help the baseline; HDPAT maintains ~50% "
        "advantage across all page sizes");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);

    // The 4KB baseline anchors all normalizations; it runs in the
    // same grid as the per-page-size baseline/hdpat pairs.
    std::vector<std::pair<SystemConfig, TranslationPolicy>> combos = {
        {SystemConfig::mi100(), TranslationPolicy::baseline()}};
    const auto sweep = pageSizeSweep();
    for (const PageSizePoint &point : sweep) {
        SystemConfig cfg = SystemConfig::mi100();
        cfg.pageShift = point.pageShift;
        cfg.name = "MI100-" + point.label;
        combos.emplace_back(cfg, TranslationPolicy::baseline());
        combos.emplace_back(cfg, TranslationPolicy::hdpat());
    }
    const auto grid = runSuiteGrid(combos, ops);
    const std::vector<RunResult> &base4k = grid[0];

    TablePrinter table({"page size", "baseline", "hdpat",
                        "hdpat advantage"});
    for (std::size_t p = 0; p < sweep.size(); ++p) {
        const std::vector<RunResult> &base = grid[1 + 2 * p];
        const std::vector<RunResult> &hdpat = grid[2 + 2 * p];

        const double base_norm = geomeanSpeedup(base4k, base);
        const double hdpat_norm = geomeanSpeedup(base4k, hdpat);
        table.addRow({sweep[p].label, fmt(base_norm) + "x",
                      fmt(hdpat_norm) + "x",
                      fmt(hdpat_norm / base_norm) + "x"});
    }
    table.print(std::cout);
    std::cout << "\n(all values normalized to the 4KB baseline)\n";
    return 0;
}
