/**
 * @file
 * Ablation (this repo): the clustering + rotation design space --
 * rotation on/off and quadrant count N_c in {2, 4, 8}. The paper
 * fixes N_c = 4 with rotation (§IV-D/E); this harness quantifies why.
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

namespace
{

const std::vector<std::string> kWorkloads = {"SPMV", "PR", "FWS",
                                             "FIR", "MM", "KM"};

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Ablation: clustering + rotation",
        "rotation on/off x cluster count, geometric mean speedup",
        "the paper argues quadrant clustering with 180-degree "
        "rotation keeps a cached copy near every requester");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);
    const SystemConfig cfg = SystemConfig::mi100();
    const auto base = runSuite(cfg, TranslationPolicy::baseline(), ops,
                               kWorkloads);

    TablePrinter table({"clusters", "rotation off", "rotation on"});
    for (const int clusters : {2, 4, 8}) {
        std::vector<std::string> row{std::to_string(clusters)};
        for (const bool rotate : {false, true}) {
            TranslationPolicy pol = TranslationPolicy::hdpat();
            pol.numClusters = clusters;
            pol.rotation = rotate;
            pol.name = "hdpat-c" + std::to_string(clusters) +
                       (rotate ? "-rot" : "-norot");
            const auto v = runSuite(cfg, pol, ops, kWorkloads);
            row.push_back(fmt(geomeanSpeedup(base, v)) + "x");
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(geomean over " << kWorkloads.size()
              << " translation-heavy workloads)\n";
    return 0;
}
