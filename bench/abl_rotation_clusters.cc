/**
 * @file
 * Ablation (this repo): the clustering + rotation design space --
 * rotation on/off and quadrant count N_c in {2, 4, 8}. The paper
 * fixes N_c = 4 with rotation (§IV-D/E); this harness quantifies why.
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

namespace
{

const std::vector<std::string> kWorkloads = {"SPMV", "PR", "FWS",
                                             "FIR", "MM", "KM"};

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Ablation: clustering + rotation",
        "rotation on/off x cluster count, geometric mean speedup",
        "the paper argues quadrant clustering with 180-degree "
        "rotation keeps a cached copy near every requester");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);
    const SystemConfig cfg = SystemConfig::mi100();

    const int cluster_counts[] = {2, 4, 8};
    std::vector<std::pair<SystemConfig, TranslationPolicy>> combos = {
        {cfg, TranslationPolicy::baseline()}};
    for (const int clusters : cluster_counts) {
        for (const bool rotate : {false, true}) {
            TranslationPolicy pol = TranslationPolicy::hdpat();
            pol.numClusters = clusters;
            pol.rotation = rotate;
            pol.name = "hdpat-c" + std::to_string(clusters) +
                       (rotate ? "-rot" : "-norot");
            combos.emplace_back(cfg, pol);
        }
    }
    const auto grid = runSuiteGrid(combos, ops, kWorkloads);
    const std::vector<RunResult> &base = grid[0];

    TablePrinter table({"clusters", "rotation off", "rotation on"});
    for (std::size_t c = 0; c < 3; ++c) {
        std::vector<std::string> row{
            std::to_string(cluster_counts[c])};
        row.push_back(fmt(geomeanSpeedup(base, grid[1 + 2 * c])) +
                      "x");
        row.push_back(fmt(geomeanSpeedup(base, grid[2 + 2 * c])) +
                      "x");
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n(geomean over " << kWorkloads.size()
              << " translation-heavy workloads)\n";
    return 0;
}
