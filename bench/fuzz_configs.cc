/**
 * @file
 * hdpat_fuzz: config-space fuzzing with differential oracles.
 *
 * Samples random SystemConfig x TranslationPolicy x workload points
 * (see src/fuzz/sampler.cc for the distribution), runs each in a
 * fork-isolated harness under the eight oracles listed in
 * src/fuzz/harness.hh (conservation audit, PPN reference, runMany
 * ordering and NoC-fusion differentials, latency conservation, the
 * backpressure Little's-law identity, the tenancy staleness oracle,
 * and the domain-parallel differential), then greedily shrinks any
 * failure to a minimal reproducer and writes it as a `.fuzzcase`
 * file ready for tests/fuzz_corpus/.
 *
 * Usage:
 *   hdpat_fuzz [--seed N] [--runs N] [--out DIR] [--timeout SEC]
 *              [--multi-tenant] [--replay FILE]...
 *
 * Exit status: 0 when every case passed (or every replay passed),
 * 1 when any finding was produced.
 */

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/harness.hh"
#include "fuzz/sampler.hh"
#include "fuzz/shrinker.hh"
#include "sim/rng.hh"

namespace
{

using namespace hdpat;

struct Options
{
    std::uint64_t seed = 1;
    int runs = 200;
    std::string outDir = "fuzz-failures";
    unsigned timeoutSeconds = 60;
    std::vector<std::string> replays;
    /** -1 = leave each case's heapEventQueue field alone. */
    int forceHeapEventQueue = -1;
    /** Force every sampled case multi-tenant (staleness sweeps). */
    bool forceMultiTenant = false;
    /** -1 = leave each case's domains field alone. */
    int forceDomains = -1;
};

void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--seed N] [--runs N] [--out DIR] [--timeout SEC]\n"
        << "       [--replay FILE]...\n"
        << "  --seed N       RNG seed for the sampler (default 1)\n"
        << "  --runs N       cases to sample (default 200)\n"
        << "  --out DIR      where shrunk reproducers are written\n"
        << "                 (default fuzz-failures; created lazily)\n"
        << "  --timeout SEC  per-case wall-clock budget (default 60)\n"
        << "  --replay FILE  run a .fuzzcase file instead of sampling\n"
        << "                 (repeatable; skips the random sweep)\n"
        << "  --eventq IMPL  force every case onto one event-queue\n"
        << "                 implementation (heap | calendar); default\n"
        << "                 is each case's own heapEventQueue field\n"
        << "  --multi-tenant force every sampled case multi-tenant\n"
        << "                 (>=2 ASIDs with switch + churn arrivals),\n"
        << "                 a directed sweep of the staleness oracle\n"
        << "  --domains K    force every case's domain-parallel shard\n"
        << "                 count (1 = serial); default is each\n"
        << "                 case's own domains field. The harness\n"
        << "                 cross-checks serial vs sharded either\n"
        << "                 way, so --domains 2 makes every replayed\n"
        << "                 corpus case exercise the parallel\n"
        << "                 scheduler\n";
    std::exit(1);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    const auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seed")
            opt.seed = std::strtoull(value(i), nullptr, 0);
        else if (arg == "--runs")
            opt.runs = std::atoi(value(i));
        else if (arg == "--out")
            opt.outDir = value(i);
        else if (arg == "--timeout")
            opt.timeoutSeconds =
                static_cast<unsigned>(std::atoi(value(i)));
        else if (arg == "--replay")
            opt.replays.emplace_back(value(i));
        else if (arg == "--eventq") {
            const std::string impl = value(i);
            if (impl == "heap")
                opt.forceHeapEventQueue = 1;
            else if (impl == "calendar")
                opt.forceHeapEventQueue = 0;
            else
                usage(argv[0]);
        } else if (arg == "--multi-tenant")
            opt.forceMultiTenant = true;
        else if (arg == "--domains") {
            opt.forceDomains = std::atoi(value(i));
            if (opt.forceDomains < 1)
                usage(argv[0]);
        } else
            usage(argv[0]);
    }
    return opt;
}

/** Apply --eventq / --domains to one case (no-ops when absent). */
FuzzCase
withEventQueueChoice(FuzzCase c, const Options &opt)
{
    if (opt.forceHeapEventQueue >= 0)
        c.heapEventQueue = opt.forceHeapEventQueue;
    if (opt.forceDomains >= 1)
        c.domains = opt.forceDomains;
    return c;
}

/** Apply --multi-tenant: single-tenant samples get tenants + churn. */
FuzzCase
withTenancyChoice(FuzzCase c, const Options &opt, Rng &rng)
{
    if (!opt.forceMultiTenant || c.asidCount > 1)
        return c;
    c.asidCount = 2 + static_cast<std::int64_t>(rng.uniformInt(3));
    c.switchRatePerMTicks = 200;
    if (c.churnRatePerMTicks == 0)
        c.churnRatePerMTicks = 100;
    return c;
}

/** Write one reproducer; returns the path ("" on failure). */
std::string
writeReproducer(const Options &opt, int index, const FuzzCase &c,
                const FuzzOutcome &outcome)
{
    ::mkdir(opt.outDir.c_str(), 0777); // Lazily; EEXIST is fine.
    const std::string path = opt.outDir + "/shrunk-" +
                             fuzzOutcomeKindName(outcome.kind) + "-" +
                             std::to_string(index) + ".fuzzcase";
    std::ofstream out(path);
    if (!out.good()) {
        std::cerr << "cannot write " << path << "\n";
        return "";
    }
    out << "# kind: " << fuzzOutcomeKindName(outcome.kind) << "\n";
    std::istringstream reason(outcome.reason);
    std::string line;
    while (std::getline(reason, line))
        out << "# " << line << "\n";
    out << c.serialize();
    return path;
}

void
reportFinding(const Options &opt, int index, const FuzzCase &found,
              const FuzzOutcome &outcome)
{
    std::cout << "\n=== FINDING #" << index << " ["
              << fuzzOutcomeKindName(outcome.kind) << "] ===\n"
              << outcome.reason << "\n"
              << "shrinking...\n";

    std::size_t trials = 0;
    const FuzzCase shrunk = shrinkFuzzCase(
        found,
        [&](const FuzzCase &candidate) {
            ++trials;
            return runFuzzCase(candidate, opt.timeoutSeconds).kind ==
                   outcome.kind;
        });
    const FuzzOutcome confirmed =
        runFuzzCase(shrunk, opt.timeoutSeconds);

    std::cout << "shrunk after " << trials
              << " trials; minimal reproducer (paste-ready):\n\n"
              << shrunk.toCppLiteral() << "\n"
              << "still fails as: "
              << fuzzOutcomeKindName(confirmed.kind) << "\n";
    const std::string path =
        writeReproducer(opt, index, shrunk, confirmed);
    if (!path.empty())
        std::cout << "reproducer written to " << path << "\n";
}

int
replayFiles(const Options &opt)
{
    int failures = 0;
    for (const std::string &path : opt.replays) {
        std::string error;
        const auto c = loadFuzzCase(path, &error);
        if (!c) {
            std::cerr << path << ": parse error: " << error << "\n";
            ++failures;
            continue;
        }
        const FuzzOutcome outcome = runFuzzCase(
            withEventQueueChoice(*c, opt), opt.timeoutSeconds);
        std::cout << path << ": " << fuzzOutcomeKindName(outcome.kind)
                  << "\n";
        if (!outcome.ok()) {
            std::cout << outcome.reason << "\n";
            ++failures;
        }
    }
    return failures > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    if (!opt.replays.empty())
        return replayFiles(opt);

    std::cout << "hdpat_fuzz: " << opt.runs << " cases, seed "
              << opt.seed << ", oracles: validity-prediction + "
              << "conservation/PPN audit + runMany differential + "
              << "NoC fusion differential + latency conservation + "
              << "backpressure/Little's law + tenancy staleness + "
              << "domain-parallel differential"
              << (opt.forceMultiTenant ? " (all cases multi-tenant)"
                                       : "")
              << "\n";

    Rng rng(opt.seed);
    int findings = 0;
    for (int i = 0; i < opt.runs; ++i) {
        const FuzzCase c = withTenancyChoice(
            withEventQueueChoice(sampleFuzzCase(rng), opt), opt, rng);
        const FuzzOutcome outcome = runFuzzCase(c, opt.timeoutSeconds);
        if (outcome.ok()) {
            if ((i + 1) % 20 == 0)
                std::cout << "  " << (i + 1) << "/" << opt.runs
                          << " cases, " << findings << " findings\n";
            continue;
        }
        ++findings;
        reportFinding(opt, findings, c, outcome);
    }

    std::cout << "\ndone: " << opt.runs << " cases, " << findings
              << " findings\n";
    return findings > 0 ? 1 : 0;
}
