/**
 * @file
 * §V-F: area and power overhead of the redirection table, from the
 * calibrated 7 nm analytical SRAM model.
 */

#include <iostream>

#include "bench_common.hh"
#include "driver/area_model.hh"

using namespace hdpat;

int
main()
{
    bench::printBanner("Sec V-F",
                       "redirection table area/power overhead",
                       "RT: 0.034 mm^2, 0.16 W; 0.02% area and 0.09% "
                       "power of an AMD Ryzen 9 CPU die");

    const SramEstimate rt = estimateSram(1024, kRedirectionEntryBits);
    const SramEstimate tlb = estimateSram(512, kTlbEntryBits);

    TablePrinter table({"structure", "entries", "bits/entry",
                        "area (mm^2)", "power (W)", "% CPU area",
                        "% CPU TDP"});
    table.addRow({"redirection table", "1024",
                  std::to_string(kRedirectionEntryBits),
                  fmt(rt.areaMm2, 3), fmt(rt.powerW, 2),
                  fmtPct(rt.areaMm2 / kCpuDieAreaMm2, 2),
                  fmtPct(rt.powerW / kCpuTdpW, 2)});
    table.addRow({"equal-area IOMMU TLB (Fig 19)", "512",
                  std::to_string(kTlbEntryBits), fmt(tlb.areaMm2, 3),
                  fmt(tlb.powerW, 2),
                  fmtPct(tlb.areaMm2 / kCpuDieAreaMm2, 2),
                  fmtPct(tlb.powerW / kCpuTdpW, 2)});
    table.print(std::cout);

    std::cout << "\nreference CPU die (AMD Ryzen 9 7900X): "
              << kCpuDieAreaMm2 << " mm^2, " << kCpuTdpW << " W TDP\n";
    return 0;
}
