/**
 * @file
 * Ablation (this repo): page-walk caches at the walkers. The paper
 * models flat 100 x 5 = 500-cycle walks; this harness asks how much of
 * HDPAT's benefit survives if the IOMMU/GMMU walkers get PWCs (a
 * cheaper latency optimization that attacks walk latency but not the
 * walker-count bottleneck).
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

namespace
{

const std::vector<std::string> kWorkloads = {"SPMV", "PR", "FWS",
                                             "FIR", "MM", "KM"};

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Ablation: page-walk caches",
        "baseline/HDPAT with and without PWCs at the walkers",
        "(extension beyond the paper) shorter walks raise walker "
        "throughput, so a PWC is a strong complement to HDPAT");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);

    SystemConfig plain = SystemConfig::mi100();
    SystemConfig with_pwc = plain;
    with_pwc.iommuPwcEntriesPerLevel = 256;
    with_pwc.gmmuPwcEntriesPerLevel = 64;
    with_pwc.name = "MI100-7x7+PWC";

    const auto grid = runSuiteGrid(
        {{plain, TranslationPolicy::baseline()},
         {with_pwc, TranslationPolicy::baseline()},
         {plain, TranslationPolicy::hdpat()},
         {with_pwc, TranslationPolicy::hdpat()}},
        ops, kWorkloads);
    const std::vector<RunResult> &base = grid[0];
    const std::vector<RunResult> &base_pwc = grid[1];
    const std::vector<RunResult> &hdpat = grid[2];
    const std::vector<RunResult> &hdpat_pwc = grid[3];

    TablePrinter table({"workload", "baseline+PWC", "hdpat",
                        "hdpat+PWC"});
    for (std::size_t w = 0; w < base.size(); ++w) {
        table.addRow({base[w].workload,
                      fmt(speedupOver(base[w], base_pwc[w])) + "x",
                      fmt(speedupOver(base[w], hdpat[w])) + "x",
                      fmt(speedupOver(base[w], hdpat_pwc[w])) + "x"});
    }
    table.addRow({"G-MEAN",
                  fmt(geomeanSpeedup(base, base_pwc)) + "x",
                  fmt(geomeanSpeedup(base, hdpat)) + "x",
                  fmt(geomeanSpeedup(base, hdpat_pwc)) + "x"});
    table.print(std::cout);

    std::cout << "\nA PWC shortens each walker's occupancy, which "
                 "multiplies the 16-walker pool's service rate -- a "
                 "strong optimization on its own. HDPAT composes with "
                 "it: together they outperform either alone.\n";
    return 0;
}
