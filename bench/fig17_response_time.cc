/**
 * @file
 * Fig 17: remote-translation round-trip response time under HDPAT,
 * normalized to the baseline, plus the NoC traffic overhead (§V-D).
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 17", "remote translation round-trip time + NoC overhead",
        "HDPAT cuts response time 41% on average and adds only 0.82% "
        "NoC traffic");

    const std::size_t ops = bench::benchOps(argc, argv);
    const SystemConfig cfg = SystemConfig::mi100();

    const auto grid = runSuiteGrid(
        {{cfg, TranslationPolicy::baseline()},
         {cfg, TranslationPolicy::hdpat()}},
        ops);
    const std::vector<RunResult> &base = grid[0];
    const std::vector<RunResult> &hdpat = grid[1];

    TablePrinter table({"workload", "baseline RTT (cyc)",
                        "hdpat RTT (cyc)", "normalized",
                        "traffic overhead"});
    std::vector<double> normalized;
    double traffic_sum = 0.0;
    for (std::size_t w = 0; w < base.size(); ++w) {
        const double b = base[w].remoteRtt.mean();
        const double h = hdpat[w].remoteRtt.mean();
        const double norm = b > 0.0 ? h / b : 1.0;
        if (b > 0.0)
            normalized.push_back(norm);
        const double traffic =
            static_cast<double>(hdpat[w].noc.byteHops) /
                static_cast<double>(base[w].noc.byteHops) -
            1.0;
        traffic_sum += traffic;
        table.addRow({base[w].workload, fmt(b, 0), fmt(h, 0),
                      fmt(norm), fmtPct(traffic)});
    }
    table.addRow({"MEAN", "-", "-", fmt(geomean(normalized)),
                  fmtPct(traffic_sum /
                         static_cast<double>(base.size()))});
    table.print(std::cout);
    std::cout << "\nnormalized < 1.0 means HDPAT responds faster; the "
                 "paper reports a 41% average saving.\n";
    return 0;
}
