/**
 * @file
 * Fig 17: remote-translation round-trip response time under HDPAT,
 * normalized to the baseline, plus the NoC traffic overhead (§V-D).
 *
 * Regenerated from exported metrics JSON (fig05-style): baseline and
 * HDPAT suites run in one runMany batch with latency attribution
 * enabled, each workload's dump is re-read through the strict JSON
 * reader, and the table is rebuilt from the "summaries", "counters",
 * and "latency" sections alone. The new p99 columns use the exact
 * end-to-end order statistics, so the tail speedup is measured rather
 * than inferred from means.
 */

#include <filesystem>
#include <iostream>

#include "bench_common.hh"
#include "obs/json_reader.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 17", "remote translation round-trip time + NoC overhead",
        "HDPAT cuts response time 41% on average and adds only 0.82% "
        "NoC traffic");

    const std::size_t ops = bench::benchOps(argc, argv);
    const SystemConfig cfg = SystemConfig::mi100();
    const std::filesystem::path json_base =
        std::filesystem::temp_directory_path() / "hdpat-fig17.json";

    // One batch, baseline suite then HDPAT suite, sharing a metrics
    // path: runMany suffixes it with the run index, so workload w of
    // policy p lands in "-<p * suite_size + w>".
    std::vector<RunSpec> specs =
        suiteSpecs(cfg, TranslationPolicy::baseline(), ops);
    {
        std::vector<RunSpec> hdpat_specs =
            suiteSpecs(cfg, TranslationPolicy::hdpat(), ops);
        specs.insert(specs.end(), hdpat_specs.begin(),
                     hdpat_specs.end());
    }
    for (RunSpec &spec : specs) {
        spec.obs.metricsJsonPath = json_base.string();
        spec.obs.latency = true;
        spec.obs.latencySampleN = 1;
    }
    runMany(specs);

    const std::size_t suite = specs.size() / 2;
    std::vector<JsonValue> docs;
    docs.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string path =
            withRunIndexSuffix(json_base.string(), i);
        docs.push_back(parseJsonFileOrDie(path));
        std::filesystem::remove(path);
    }

    TablePrinter table({"workload", "baseline RTT (cyc)",
                        "hdpat RTT (cyc)", "normalized",
                        "baseline p99", "hdpat p99", "p99 norm",
                        "traffic overhead"});
    std::vector<double> normalized;
    std::vector<double> normalized_p99;
    double traffic_sum = 0.0;
    for (std::size_t w = 0; w < suite; ++w) {
        const JsonValue &base = docs[w];
        const JsonValue &hdpat = docs[suite + w];
        const double b = base.at("summaries")
                             .at("gpm.remote_rtt")
                             .at("mean")
                             .asNumber();
        const double h = hdpat.at("summaries")
                             .at("gpm.remote_rtt")
                             .at("mean")
                             .asNumber();
        const double norm = b > 0.0 ? h / b : 1.0;
        if (b > 0.0)
            normalized.push_back(norm);
        const std::uint64_t b99 = base.at("latency")
                                      .at("end_to_end")
                                      .at("quantiles")
                                      .at("p99")
                                      .asUint();
        const std::uint64_t h99 = hdpat.at("latency")
                                      .at("end_to_end")
                                      .at("quantiles")
                                      .at("p99")
                                      .asUint();
        const double norm99 =
            b99 ? static_cast<double>(h99) / static_cast<double>(b99)
                : 1.0;
        if (b99)
            normalized_p99.push_back(norm99);
        const double traffic =
            static_cast<double>(
                hdpat.at("counters").at("noc.byte_hops").asUint()) /
                static_cast<double>(
                    base.at("counters").at("noc.byte_hops").asUint()) -
            1.0;
        traffic_sum += traffic;
        table.addRow({base.at("run").at("workload").asString(),
                      fmt(b, 0), fmt(h, 0), fmt(norm),
                      std::to_string(b99), std::to_string(h99),
                      fmt(norm99), fmtPct(traffic)});
    }
    table.addRow({"MEAN", "-", "-", fmt(geomean(normalized)), "-", "-",
                  fmt(geomean(normalized_p99)),
                  fmtPct(traffic_sum / static_cast<double>(suite))});
    table.print(std::cout);
    std::cout << "\nnormalized < 1.0 means HDPAT responds faster; the "
                 "paper reports a 41% average saving.\n";
    return 0;
}
