/**
 * @file
 * Fig 18: sensitivity to the proactive-delivery granularity -- HDPAT
 * with 1, 4, and 8 contiguous PTEs delivered per page-table walk,
 * normalized to no-HDPAT.
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 18", "proactive delivery granularity sweep",
        "1/4/8 PTEs deliver 1.40x/1.57x/1.59x on average; gains "
        "saturate at 4 (HDPAT's default); BT and MT improve <10%");

    const std::size_t ops = bench::benchOps(argc, argv, 0.67);
    const SystemConfig cfg = SystemConfig::mi100();

    const int degrees[] = {1, 4, 8};
    std::vector<std::pair<SystemConfig, TranslationPolicy>> combos = {
        {cfg, TranslationPolicy::baseline()}};
    for (const int degree : degrees) {
        TranslationPolicy pol = TranslationPolicy::hdpat();
        pol.prefetchDegree = degree;
        pol.prefetch = degree > 1;
        pol.name = "hdpat-deg" + std::to_string(degree);
        combos.emplace_back(cfg, pol);
    }
    const auto grid = runSuiteGrid(combos, ops);
    const std::vector<RunResult> &base = grid[0];

    TablePrinter table({"workload", "1 PTE", "4 PTEs", "8 PTEs"});
    std::vector<std::vector<double>> all_speedups(3);
    for (std::size_t d = 0; d < 3; ++d)
        all_speedups[d] = speedups(base, grid[d + 1]);

    for (std::size_t w = 0; w < base.size(); ++w) {
        table.addRow({base[w].workload,
                      fmt(all_speedups[0][w]) + "x",
                      fmt(all_speedups[1][w]) + "x",
                      fmt(all_speedups[2][w]) + "x"});
    }
    table.addRow({"G-MEAN", fmt(geomean(all_speedups[0])) + "x",
                  fmt(geomean(all_speedups[1])) + "x",
                  fmt(geomean(all_speedups[2])) + "x"});
    table.print(std::cout);

    std::cout << "\nmarginal gain of 8 over 4 PTEs: "
              << fmtPct(geomean(all_speedups[2]) /
                            geomean(all_speedups[1]) -
                        1.0)
              << " (paper: 1.91% -- why HDPAT adopts 4)\n";
    return 0;
}
