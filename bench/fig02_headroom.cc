/**
 * @file
 * Fig 2: performance headroom of an idealized IOMMU. Compares the
 * baseline MMU (500-cycle walks, 16 walkers) against (a) 1-cycle walks
 * with 16 walkers and (b) 500-cycle walks with 4096 walkers, per
 * workload plus the geometric mean.
 */

#include <iostream>

#include "bench_common.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 2", "idealized-IOMMU headroom analysis",
        "ideal IOMMUs deliver 5.45x (1-cycle) and 4.96x (4096 walkers) "
        "average speedup over the baseline");

    const std::size_t ops = bench::benchOps(argc, argv);
    const SystemConfig base_cfg = SystemConfig::mi100();

    SystemConfig fast_cfg = base_cfg;
    fast_cfg.iommuWalkLatency = 1;
    fast_cfg.name = "ideal-1cyc-16walkers";

    SystemConfig wide_cfg = base_cfg;
    wide_cfg.iommuWalkers = 4096;
    wide_cfg.iommuPwQueueCapacity = 8192;
    wide_cfg.name = "ideal-500cyc-4096walkers";

    const TranslationPolicy pol = TranslationPolicy::baseline();

    const auto grid = runSuiteGrid(
        {{base_cfg, pol}, {fast_cfg, pol}, {wide_cfg, pol}}, ops);
    const std::vector<RunResult> &base_runs = grid[0];
    const std::vector<RunResult> &fast_runs = grid[1];
    const std::vector<RunResult> &wide_runs = grid[2];

    TablePrinter table({"workload", "baseline (cyc)",
                        "1cyc/16walkers", "500cyc/4096walkers"});
    std::vector<double> fast_speedups, wide_speedups;
    for (std::size_t i = 0; i < base_runs.size(); ++i) {
        const RunResult &base = base_runs[i];
        const double fast_speedup = speedupOver(base, fast_runs[i]);
        const double wide_speedup = speedupOver(base, wide_runs[i]);
        fast_speedups.push_back(fast_speedup);
        wide_speedups.push_back(wide_speedup);
        table.addRow({base.workload, std::to_string(base.totalTicks),
                      fmt(fast_speedup) + "x",
                      fmt(wide_speedup) + "x"});
    }
    table.addRow({"G-MEAN", "-", fmt(geomean(fast_speedups)) + "x",
                  fmt(geomean(wide_speedups)) + "x"});
    table.print(std::cout);

    std::cout << "\nBoth idealizations remove the dominating queueing "
                 "time, so their speedups are similar (paper's "
                 "observation O1).\n";
    return 0;
}
