#!/usr/bin/env bash
# Wall-clock snapshot of the simulator's host-side performance:
#
#   1. times fig14_overall (5 policies x 14 workloads = 70 simulations)
#      serially and with one job per core,
#   2. times the same sweep with the host self-profiler on, so the
#      profiler's overhead is measured and recorded,
#   3. times the same sweep with latency attribution on (exact mode),
#      so the attribution overhead is measured and recorded like the
#      profiler's,
#   4. captures a per-subsystem host self-profile (via hdpat_cli
#      --profile and perf_report --extract) and embeds it in the
#      emitted record for perf_report --baseline diffs,
#   5. captures a latency-anatomy digest of the same representative
#      run (via perf_report --extract-latency) and embeds it for
#      perf_report --latency-diff tail-regression gating,
#   6. captures the exported simulation counters of an audited run of
#      the same representative command, embedded for
#      perf_report --counter-check (the engine.events_scheduled gate
#      that catches a silently un-fused NoC delivery path),
#   7. times the same sweep with backpressure accounting on, so the
#      resource-saturation overhead is measured and recorded like the
#      profiler's and latency attribution's,
#   8. records the micro_substrates google-benchmark suite as
#      BENCH_micro.json (next to the fig14 record),
#   9. runs the fig_tenant_churn multi-tenant sweep and captures the
#      exported counters of its heaviest cell (8 tenants, 1000
#      switches/Mtick), so tenancy-path slowdowns and behavioral
#      drift in the shootdown/fault machinery land in the record,
#  10. times the same serial sweep with each single run sharded across
#      one spatial domain per core (HDPAT_DOMAINS, the conservative
#      domain-parallel scheduler), recording the intra-run speedup --
#      note this number is only meaningful on a multi-core host: in a
#      1-core container the K=hw run measures pure scheduler overhead
#      and the "speedup" sits below 1,
#  11. appends a one-line digest (commit, date, headline wall-clock
#      and ns/call numbers, audited counters, churn-sweep digest) to
#      BENCH_history.jsonl, so the perf trajectory across PRs stays
#      queryable instead of being overwritten in BENCH_fig14.json.
#
# Usage: bench/perf_snapshot.sh [BUILD_DIR] [OPS_PER_GPM] > BENCH_fig14.json
#        MICRO_OUT=path.json overrides the micro-benchmark output path.
#        HISTORY_OUT=path.jsonl overrides the history append target.
set -euo pipefail

BUILD_DIR="${1:-build}"
OPS="${2:-300}"
BIN="$BUILD_DIR/bench/fig14_overall"
CLI="$BUILD_DIR/examples/hdpat_cli"
REPORT="$BUILD_DIR/bench/perf_report"
MICRO="$BUILD_DIR/bench/micro_substrates"
EVENTQ="$BUILD_DIR/bench/bench_event_queue"
CHURN="$BUILD_DIR/bench/fig_tenant_churn"
MICRO_OUT="${MICRO_OUT:-BENCH_micro.json}"
HISTORY_OUT="${HISTORY_OUT:-BENCH_history.jsonl}"
CORES="$(nproc)"

for tool in "$BIN" "$CLI" "$REPORT" "$MICRO" "$EVENTQ" "$CHURN"; do
    if [ ! -x "$tool" ]; then
        echo "error: $tool not found (build first: cmake --build $BUILD_DIR -j)" >&2
        exit 1
    fi
done

# Refuse to snapshot anything but a Release build: committed
# BENCH_*.json records gate CI, and a debug-build baseline would make
# every future Release measurement look like a huge improvement (and
# mask real regressions). Checked before any record is written.
if ! grep -q '^CMAKE_BUILD_TYPE:[^=]*=Release$' "$BUILD_DIR/CMakeCache.txt" \
        2>/dev/null; then
    echo "error: $BUILD_DIR is not a Release build" >&2
    echo "  (configure with -DCMAKE_BUILD_TYPE=Release; found: \
$(grep '^CMAKE_BUILD_TYPE:' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null \
        || echo 'no CMakeCache.txt'))" >&2
    exit 1
fi

run_timed() {
    local jobs="$1" profile="$2" latency="${3:-}" backpressure="${4:-}"
    local domains="${5:-}"
    local start end
    start="$(date +%s.%N)"
    HDPAT_JOBS="$jobs" HDPAT_PROFILE="$profile" \
        HDPAT_LATENCY="$latency" HDPAT_BACKPRESSURE="$backpressure" \
        HDPAT_DOMAINS="$domains" \
        "$BIN" "$OPS" > /dev/null
    end="$(date +%s.%N)"
    awk -v s="$start" -v e="$end" 'BEGIN { printf "%.3f", e - s }'
}

# Warm-up run so first-touch costs (page cache, allocator) don't skew
# the serial number.
"$BIN" 50 > /dev/null

SERIAL="$(run_timed 1 "")"
PARALLEL="$(run_timed "$CORES" "")"
SPEEDUP="$(awk -v s="$SERIAL" -v p="$PARALLEL" \
    'BEGIN { printf "%.2f", (p > 0 ? s / p : 0) }')"

# Intra-run parallelism: the serial (jobs=1) sweep again with each
# single simulation sharded across one spatial domain per core. The
# results are bitwise identical to serial (CI asserts it); the ratio
# is the conservative scheduler's intra-run speedup. Caveat: on a
# 1-core container the domain workers time-slice one core, so this
# measures synchronization overhead (ratio < 1) rather than speedup --
# compare records only across hosts with the same core count.
INTRA_DOMAINS="$CORES"
INTRA_TIMED="$(run_timed 1 "" "" "" "$INTRA_DOMAINS")"
INTRA_SPEEDUP="$(awk -v s="$SERIAL" -v d="$INTRA_TIMED" \
    'BEGIN { printf "%.2f", (d > 0 ? s / d : 0) }')"

# The same serial sweep with the self-profiler on: the delta is the
# profiler's own overhead, recorded so regressions in the "zero-cost
# when disabled" promise show up in review.
PROFILED="$(run_timed 1 1)"
OVERHEAD_PCT="$(awk -v s="$SERIAL" -v p="$PROFILED" \
    'BEGIN { printf "%.1f", (s > 0 ? (p / s - 1) * 100 : 0) }')"

# And with latency attribution on (exact mode, every span): the delta
# is the attribution overhead, recorded for the same reason -- the
# "bitwise-identical when off, measured cost when on" promise.
LATENCY_TIMED="$(run_timed 1 "" 1)"
LATENCY_OVERHEAD_PCT="$(awk -v s="$SERIAL" -v l="$LATENCY_TIMED" \
    'BEGIN { printf "%.1f", (s > 0 ? (l / s - 1) * 100 : 0) }')"

# And with backpressure accounting on (every bounded structure reports
# its transitions): same promise, same measurement.
BACKPRESSURE_TIMED="$(run_timed 1 "" "" 1)"
BACKPRESSURE_OVERHEAD_PCT="$(awk -v s="$SERIAL" -v b="$BACKPRESSURE_TIMED" \
    'BEGIN { printf "%.1f", (s > 0 ? (b / s - 1) * 100 : 0) }')"

# Per-subsystem profile of one representative profiled run, embedded
# for perf_report --baseline and the CI --check gate. An unprofiled
# warm-up of the same command first, so first-touch costs don't land
# in the recorded per-call times (CI's perf-smoke step warms up the
# same way before it measures).
PROFILE_TMP="$(mktemp --suffix=.json)"
trap 'rm -f "$PROFILE_TMP"' EXIT
"$CLI" --workload SPMV --policy hdpat --ops "$OPS" > /dev/null
HDPAT_PROFILE=1 HDPAT_METRICS_JSON="$PROFILE_TMP" \
    "$CLI" --workload SPMV --policy hdpat --ops "$OPS" --profile \
    > /dev/null
PROFILE_JSON="$("$REPORT" --extract "$PROFILE_TMP")"

# Latency-anatomy digest of the same representative run (exact mode),
# embedded for perf_report --latency-diff: simulated per-stage ticks
# are deterministic, so CI can hold tail regressions to a tight band.
LATENCY_TMP="$(mktemp --suffix=.json)"
trap 'rm -f "$PROFILE_TMP" "$LATENCY_TMP"' EXIT
HDPAT_LATENCY=1 HDPAT_METRICS_JSON="$LATENCY_TMP" \
    "$CLI" --workload SPMV --policy hdpat --ops "$OPS" --latency \
    > /dev/null
LATENCY_JSON="$("$REPORT" --extract-latency "$LATENCY_TMP")"

# Exported simulation counters of an *audited* run of the same command,
# embedded for perf_report --counter-check. Audited, because only runs
# with an observer attached schedule (or fuse) delivery companion
# events: engine.events_scheduled from this run is the number that
# jumps ~20% if NoC arrival fusion silently stops applying.
COUNTER_TMP="$(mktemp --suffix=.json)"
trap 'rm -f "$PROFILE_TMP" "$LATENCY_TMP" "$COUNTER_TMP"' EXIT
HDPAT_AUDIT=1 HDPAT_METRICS_JSON="$COUNTER_TMP" \
    "$CLI" --workload SPMV --policy hdpat --ops "$OPS" --audit \
    > /dev/null
COUNTERS_JSON="$(jq -c '.counters' "$COUNTER_TMP")"

# Substrate micro-benchmarks (TLB, cuckoo filter, event queue, ...),
# plus the calendar-vs-heap event-queue head-to-head, merged into one
# record (the benchmarks arrays concatenate; context comes from the
# substrate run).
SUBSTRATE_TMP="$(mktemp --suffix=.json)"
EVENTQ_TMP="$(mktemp --suffix=.json)"
trap 'rm -f "$PROFILE_TMP" "$LATENCY_TMP" "$COUNTER_TMP" \
    "$SUBSTRATE_TMP" "$EVENTQ_TMP"' EXIT
"$MICRO" --benchmark_format=json --benchmark_out="$SUBSTRATE_TMP" \
    --benchmark_out_format=json > /dev/null
"$EVENTQ" --benchmark_format=json --benchmark_out="$EVENTQ_TMP" \
    --benchmark_out_format=json > /dev/null
# Same Release discipline for the google-benchmark harness itself:
# its JSON context records how the benchmark *library* was built. The
# timing loops live in OUR translation units (covered by the
# CMAKE_BUILD_TYPE assertion above); the library only contributes the
# per-iteration bookkeeping, and the Debian-packaged libbenchmark is
# compiled without NDEBUG so it always reports "debug". Hard-fail only
# if the context is missing entirely (wrong/ancient library); surface
# a non-release library loudly so the record is never mistaken for a
# fully-release harness.
for bench_json in "$SUBSTRATE_TMP" "$EVENTQ_TMP"; do
    build_type="$(jq -r '.context.library_build_type // empty' \
        "$bench_json")"
    if [ -z "$build_type" ]; then
        echo "error: google-benchmark emitted no" \
            "context.library_build_type (unsupported library?)" >&2
        exit 1
    fi
    if [ "$build_type" != "release" ]; then
        echo "warning: google-benchmark library reports build type" \
            "'$build_type' (system-packaged lib without NDEBUG);" \
            "benchmark bodies are still Release-built -- compare" \
            "records only against the same library" >&2
    fi
done
jq -s '.[0] * {benchmarks: (.[0].benchmarks + .[1].benchmarks)}' \
    "$SUBSTRATE_TMP" "$EVENTQ_TMP" > "$MICRO_OUT"
echo "wrote micro-benchmark record to $MICRO_OUT" >&2

# Multi-tenant churn sweep: wall-clock of the whole tenant-count x
# switch-rate grid, plus the exported tenancy counters of the
# heaviest cell. The sweep is deterministic, so the counters gate
# behavioral drift in the shootdown/fault paths the same way
# engine.events_scheduled gates NoC fusion.
CHURN_DIR="$(mktemp -d)"
trap 'rm -f "$PROFILE_TMP" "$LATENCY_TMP" "$COUNTER_TMP" \
    "$SUBSTRATE_TMP" "$EVENTQ_TMP"; rm -rf "$CHURN_DIR"' EXIT
churn_start="$(date +%s.%N)"
HDPAT_TENANT_CHURN_DIR="$CHURN_DIR" "$CHURN" "$OPS" > /dev/null
churn_end="$(date +%s.%N)"
CHURN_SECONDS="$(awk -v s="$churn_start" -v e="$churn_end" \
    'BEGIN { printf "%.3f", e - s }')"
CHURN_JSON="$(jq -c '{
    total_ticks: .run.total_ticks,
    context_switches: .counters["tenancy.context_switches"],
    pages_churned: .counters["tenancy.pages_churned"],
    page_faults: .counters["iommu.page_faults"],
    faults_serviced: .counters["iommu.faults_serviced"],
    stale_installs_blocked: .counters["gpm.stale_installs_blocked"],
    invalidations_received: .counters["gpm.invalidations_received"]
  }' "$CHURN_DIR/fig_tenant_churn.hdpat.t8.s1000.json")"

DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

cat <<EOF
{
  "bench": "fig14_overall",
  "ops_per_gpm": $OPS,
  "cores": $CORES,
  "serial_seconds": $SERIAL,
  "parallel_jobs": $CORES,
  "parallel_seconds": $PARALLEL,
  "speedup": $SPEEDUP,
  "intra_domains": $INTRA_DOMAINS,
  "intra_domain_seconds": $INTRA_TIMED,
  "intra_domain_speedup": $INTRA_SPEEDUP,
  "profiled_serial_seconds": $PROFILED,
  "profiler_overhead_pct": $OVERHEAD_PCT,
  "latency_serial_seconds": $LATENCY_TIMED,
  "latency_overhead_pct": $LATENCY_OVERHEAD_PCT,
  "backpressure_serial_seconds": $BACKPRESSURE_TIMED,
  "backpressure_overhead_pct": $BACKPRESSURE_OVERHEAD_PCT,
  "churn_sweep_seconds": $CHURN_SECONDS,
  "churn_heaviest_cell": $CHURN_JSON,
  "profile": $PROFILE_JSON,
  "latency": $LATENCY_JSON,
  "counters": $COUNTERS_JSON,
  "date": "$DATE",
  "host": "$(uname -sm)"
}
EOF

# One-line history record: the headline numbers only (wall-clock per
# mode, the hot sections' ns/call, the audited event/translation
# counters), keyed by commit. Appended, never rewritten -- the
# committed BENCH_fig14.json holds the full current baseline, this
# file holds the trajectory.
COMMIT="$(git -C "$(dirname "$0")/.." rev-parse --short HEAD \
    2>/dev/null || echo unknown)"
jq -cn \
    --arg commit "$COMMIT" \
    --arg date "$DATE" \
    --argjson ops "$OPS" \
    --argjson serial "$SERIAL" \
    --argjson parallel "$PARALLEL" \
    --argjson speedup "$SPEEDUP" \
    --argjson intra_domains "$INTRA_DOMAINS" \
    --argjson intra_seconds "$INTRA_TIMED" \
    --argjson intra_speedup "$INTRA_SPEEDUP" \
    --argjson profiler_pct "$OVERHEAD_PCT" \
    --argjson latency_pct "$LATENCY_OVERHEAD_PCT" \
    --argjson backpressure_pct "$BACKPRESSURE_OVERHEAD_PCT" \
    --argjson profile "$PROFILE_JSON" \
    --argjson counters "$COUNTERS_JSON" \
    --argjson churn_seconds "$CHURN_SECONDS" \
    --argjson churn "$CHURN_JSON" \
    '{commit: $commit, date: $date, bench: "fig14_overall",
      ops_per_gpm: $ops, serial_seconds: $serial,
      parallel_seconds: $parallel, speedup: $speedup,
      intra_domains: $intra_domains,
      intra_domain_seconds: $intra_seconds,
      intra_domain_speedup: $intra_speedup,
      profiler_overhead_pct: $profiler_pct,
      latency_overhead_pct: $latency_pct,
      backpressure_overhead_pct: $backpressure_pct,
      churn_sweep_seconds: $churn_seconds,
      churn_heaviest_cell: $churn,
      ns_per_call: ($profile.sections
          | with_entries(.value = (if .value.calls > 0
              then (.value.nanos / .value.calls | round) else 0 end))),
      counters: {
          events_scheduled: $counters["engine.events_scheduled"],
          iommu_walks_completed: $counters["iommu.walks_completed"]
      }}' >> "$HISTORY_OUT"
echo "appended history record for $COMMIT to $HISTORY_OUT" >&2
