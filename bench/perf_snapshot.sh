#!/usr/bin/env bash
# Wall-clock snapshot of the parallel sweep runner: times fig14_overall
# (5 policies x 14 workloads = 70 simulations) serially and with one
# job per core, and emits a JSON record on stdout.
#
# Usage: bench/perf_snapshot.sh [BUILD_DIR] [OPS_PER_GPM] > BENCH_fig14.json
set -euo pipefail

BUILD_DIR="${1:-build}"
OPS="${2:-300}"
BIN="$BUILD_DIR/bench/fig14_overall"
CORES="$(nproc)"

if [ ! -x "$BIN" ]; then
    echo "error: $BIN not found (build first: cmake --build $BUILD_DIR -j)" >&2
    exit 1
fi

run_timed() {
    local jobs="$1" start end
    start="$(date +%s.%N)"
    HDPAT_JOBS="$jobs" "$BIN" "$OPS" > /dev/null
    end="$(date +%s.%N)"
    awk -v s="$start" -v e="$end" 'BEGIN { printf "%.3f", e - s }'
}

# Warm-up run so first-touch costs (page cache, allocator) don't skew
# the serial number.
"$BIN" 50 > /dev/null

SERIAL="$(run_timed 1)"
PARALLEL="$(run_timed "$CORES")"
SPEEDUP="$(awk -v s="$SERIAL" -v p="$PARALLEL" \
    'BEGIN { printf "%.2f", (p > 0 ? s / p : 0) }')"

cat <<EOF
{
  "bench": "fig14_overall",
  "ops_per_gpm": $OPS,
  "cores": $CORES,
  "serial_seconds": $SERIAL,
  "parallel_jobs": $CORES,
  "parallel_seconds": $PARALLEL,
  "speedup": $SPEEDUP,
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "host": "$(uname -sm)"
}
EOF
