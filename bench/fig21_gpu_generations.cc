/**
 * @file
 * Fig 21: HDPAT's geometric-mean improvement across GPM configurations
 * modeled after commercial GPUs (MI100/MI200/MI300/H100/H200).
 */

#include <iostream>

#include "bench_common.hh"
#include "config/gpu_presets.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 21", "HDPAT across GPU-generation configurations",
        "1.57x on MI100; 1.47x/1.50x on MI200/MI300; larger-memory "
        "H100/H200 reach 2.52x/2.36x");

    const std::size_t ops = bench::benchOps(argc, argv, 0.5);

    const auto generations = gpuGenerationConfigs();
    std::vector<std::pair<SystemConfig, TranslationPolicy>> combos;
    for (const SystemConfig &cfg : generations) {
        combos.emplace_back(cfg, TranslationPolicy::baseline());
        combos.emplace_back(cfg, TranslationPolicy::hdpat());
    }
    const auto grid = runSuiteGrid(combos, ops);

    TablePrinter table({"configuration", "hdpat G-MEAN speedup"});
    for (std::size_t g = 0; g < generations.size(); ++g) {
        table.addRow({generations[g].name,
                      fmt(geomeanSpeedup(grid[2 * g],
                                         grid[2 * g + 1])) +
                          "x"});
    }
    table.print(std::cout);
    return 0;
}
