/**
 * @file
 * Fig 5: per-GPM execution imbalance by geometric position. Central
 * GPMs are closer to the CPU-hosted IOMMU and average fewer hops to
 * remote data, so they resolve translations faster and finish earlier.
 *
 * This harness regenerates the figure from the exported introspection
 * data rather than poking the System directly: each run writes the
 * "spatial" section of the hdpat-metrics-v1 JSON (per-tile position,
 * ring, finish tick, remote-RTT summary, per-link traffic), the file
 * is re-read through the strict JSON reader, and every table below is
 * rebuilt from the parsed document alone. Anything the figure needs
 * but the export lacks is a bug in the export.
 *
 * Three views are printed per benchmark: the per-GPM execution-time
 * grid with per-ring means, the per-ring mean remote-translation
 * round-trip time (the mechanism behind the imbalance), and the
 * hottest NoC links (traffic concentrates near the CPU tile). Once
 * the IOMMU queue saturates, queueing delay equalizes finish times,
 * so this harness runs in the pre-saturation regime by default.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>

#include "bench_common.hh"
#include "obs/json_reader.hh"

using namespace hdpat;

namespace
{

/** One tile row of the exported "spatial" section. */
struct TileInfo
{
    int x = 0;
    int y = 0;
    int ring = 0;
    bool isCpu = false;
    Tick finishTick = 0;
    double rttMean = 0.0;
    std::uint64_t rttCount = 0;
};

void
positionReport(const std::string &workload, std::size_t ops)
{
    const std::filesystem::path json_path =
        std::filesystem::temp_directory_path() /
        ("hdpat-fig05-" + workload + ".json");

    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.policy = TranslationPolicy::baseline();
    spec.workload = workload;
    spec.opsPerGpm = ops;
    spec.seed = 0x5eed;
    // The figure is rebuilt from this export, so the metrics path is
    // fixed here (HDPAT_METRICS_JSON does not apply to this harness);
    // other env-driven observability still rides along.
    spec.obs.metricsJsonPath = json_path.string();
    spec.obs.spatialWindow = 100'000;
    runOnce(spec);

    const JsonValue doc = parseJsonFileOrDie(json_path.string());
    const JsonValue &spatial = doc.at("spatial");
    const JsonValue &mesh = spatial.at("mesh");
    const int width = static_cast<int>(mesh.at("width").asNumber());
    const int height = static_cast<int>(mesh.at("height").asNumber());

    std::map<std::pair<int, int>, TileInfo> grid;
    std::map<int, std::pair<double, int>> finish_by_ring;
    std::map<int, std::pair<double, int>> rtt_by_ring;
    for (const JsonValue &tile : spatial.at("tiles").elements) {
        TileInfo info;
        info.x = static_cast<int>(tile.at("x").asNumber());
        info.y = static_cast<int>(tile.at("y").asNumber());
        info.ring = static_cast<int>(tile.at("ring").asNumber());
        info.isCpu = tile.at("is_cpu").asBool();
        if (info.isCpu) {
            grid[{info.x, info.y}] = info;
            continue;
        }
        info.finishTick = tile.at("finish_tick").asUint();
        info.rttMean = tile.at("rtt_mean").asNumber();
        info.rttCount = tile.at("rtt_count").asUint();
        grid[{info.x, info.y}] = info;

        auto &[fsum, fn] = finish_by_ring[info.ring];
        fsum += static_cast<double>(info.finishTick);
        ++fn;
        if (info.rttCount > 0) {
            auto &[rsum, rn] = rtt_by_ring[info.ring];
            rsum += info.rttMean;
            ++rn;
        }
    }

    std::cout << workload
              << ": per-GPM execution time (kilocycles) by position\n";
    for (int y = 0; y < height; ++y) {
        std::cout << "  ";
        for (int x = 0; x < width; ++x) {
            const auto it = grid.find({x, y});
            if (it == grid.end() || it->second.isCpu) {
                std::printf("%8s", "CPU");
            } else {
                std::printf("%8.1f",
                            static_cast<double>(
                                it->second.finishTick) /
                                1000.0);
            }
        }
        std::cout << '\n';
    }

    TablePrinter table({"ring (Chebyshev dist from CPU)", "GPMs",
                        "mean finish (kcyc)",
                        "mean remote-translation RTT (cyc)"});
    for (const auto &[ring, acc] : finish_by_ring) {
        const auto &rtt = rtt_by_ring[ring];
        table.addRow({std::to_string(ring),
                      std::to_string(acc.second),
                      fmt(acc.first / acc.second / 1000.0, 1),
                      fmt(rtt.second ? rtt.first / rtt.second : 0.0,
                          0)});
    }
    table.print(std::cout);

    // The same concentration mechanism, seen in the NoC: links close
    // to the CPU tile carry the most translation traffic.
    struct LinkRow
    {
        TileId tile;
        std::string dir;
        std::uint64_t packets;
        std::uint64_t bytes;
    };
    std::vector<LinkRow> links;
    for (const JsonValue &link : spatial.at("links").elements) {
        links.push_back({static_cast<TileId>(
                             link.at("tile").asUint()),
                         link.at("dir").asString(),
                         link.at("packets").asUint(),
                         link.at("bytes").asUint()});
    }
    std::sort(links.begin(), links.end(),
              [](const LinkRow &a, const LinkRow &b) {
                  return a.packets > b.packets;
              });
    TablePrinter hot({"hottest links", "direction", "packets",
                      "kilobytes"});
    const std::size_t shown = std::min<std::size_t>(links.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
        hot.addRow({"tile " + std::to_string(links[i].tile),
                    links[i].dir, std::to_string(links[i].packets),
                    fmt(static_cast<double>(links[i].bytes) / 1024.0,
                        1)});
    }
    hot.print(std::cout);
    std::cout << '\n';

    std::filesystem::remove(json_path);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 5", "GPM execution-time imbalance by wafer position",
        "centrally located GPMs consistently finish earlier; the gap "
        "comes from translation and remote-access distance");

    // Pre-saturation regime: once the IOMMU backlog dominates, every
    // GPM waits in the same queue and the geometric gap disappears.
    const std::size_t ops = bench::benchOps(argc, argv, 0.05);
    positionReport("SPMV", ops);
    positionReport("MM", ops);
    return 0;
}
