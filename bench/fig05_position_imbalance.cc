/**
 * @file
 * Fig 5: per-GPM execution imbalance by geometric position. Central
 * GPMs are closer to the CPU-hosted IOMMU and average fewer hops to
 * remote data, so they resolve translations faster and finish earlier.
 *
 * Two views are printed per benchmark: the per-GPM execution-time
 * grid with per-ring means, and the per-ring mean remote-translation
 * round-trip time (the mechanism behind the imbalance). Once the
 * IOMMU queue saturates, queueing delay equalizes finish times, so
 * this harness runs in the pre-saturation regime by default.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "driver/system.hh"

using namespace hdpat;

namespace
{

void
positionReport(const std::string &workload, std::size_t ops)
{
    System sys(SystemConfig::mi100(), TranslationPolicy::baseline());
    auto wl = makeWorkload(workload);
    sys.loadWorkload(*wl, ops, 0x5eed);
    sys.run();

    std::map<int, std::pair<double, int>> finish_by_ring;
    std::map<int, std::pair<double, int>> rtt_by_ring;
    std::map<TileId, Tick> finish;
    for (std::size_t i = 0; i < sys.numGpms(); ++i) {
        const Gpm &gpm = sys.gpm(i);
        const int ring = sys.topology().ringOf(gpm.tile());
        finish[gpm.tile()] = gpm.stats().finishTick;
        auto &[fsum, fn] = finish_by_ring[ring];
        fsum += static_cast<double>(gpm.stats().finishTick);
        ++fn;
        if (gpm.stats().remoteRtt.count() > 0) {
            auto &[rsum, rn] = rtt_by_ring[ring];
            rsum += gpm.stats().remoteRtt.mean();
            ++rn;
        }
    }

    std::cout << workload
              << ": per-GPM execution time (kilocycles) by position\n";
    for (int y = 0; y < sys.topology().height(); ++y) {
        std::cout << "  ";
        for (int x = 0; x < sys.topology().width(); ++x) {
            const TileId t = sys.topology().tileAt({x, y});
            if (t == sys.topology().cpuTile()) {
                std::printf("%8s", "CPU");
            } else {
                std::printf("%8.1f",
                            static_cast<double>(finish[t]) / 1000.0);
            }
        }
        std::cout << '\n';
    }

    TablePrinter table({"ring (Chebyshev dist from CPU)", "GPMs",
                        "mean finish (kcyc)",
                        "mean remote-translation RTT (cyc)"});
    for (const auto &[ring, acc] : finish_by_ring) {
        const auto &rtt = rtt_by_ring[ring];
        table.addRow({std::to_string(ring),
                      std::to_string(acc.second),
                      fmt(acc.first / acc.second / 1000.0, 1),
                      fmt(rtt.second ? rtt.first / rtt.second : 0.0,
                          0)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printBanner(
        "Fig 5", "GPM execution-time imbalance by wafer position",
        "centrally located GPMs consistently finish earlier; the gap "
        "comes from translation and remote-access distance");

    // Pre-saturation regime: once the IOMMU backlog dominates, every
    // GPM waits in the same queue and the geometric gap disappears.
    const std::size_t ops = bench::benchOps(argc, argv, 0.05);
    positionReport("SPMV", ops);
    positionReport("MM", ops);
    return 0;
}
