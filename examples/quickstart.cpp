/**
 * @file
 * Quickstart: simulate one workload (SPMV) on a 7x7 wafer-scale GPU
 * under the naive centralized baseline and under HDPAT, then print the
 * speedup and the translation-handling breakdown.
 *
 * Usage: quickstart [WORKLOAD] [OPS_PER_GPM]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "driver/parallel.hh"
#include "driver/runner.hh"
#include "driver/table_printer.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "SPMV";
    const std::size_t ops =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8000;

    std::cout << "HDPAT quickstart: " << workload << " on a 7x7 wafer ("
              << SystemConfig::mi100().numGpms() << " GPMs), " << ops
              << " memory ops per GPM\n\n";

    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.workload = workload;
    spec.opsPerGpm = ops;

    spec.policy = TranslationPolicy::baseline();
    RunSpec hdpat_spec = spec;
    hdpat_spec.policy = TranslationPolicy::hdpat();
    const std::vector<RunResult> runs =
        runMany({spec, hdpat_spec});
    const RunResult &base = runs[0];
    const RunResult &hdpat = runs[1];

    TablePrinter table({"metric", "baseline", "hdpat"});
    table.addRow({"cycles", std::to_string(base.totalTicks),
                  std::to_string(hdpat.totalTicks)});
    table.addRow({"remote translations",
                  std::to_string(base.remoteServed()),
                  std::to_string(hdpat.remoteServed())});
    table.addRow({"IOMMU walks",
                  std::to_string(base.iommu.walksCompleted),
                  std::to_string(hdpat.iommu.walksCompleted)});
    table.addRow({"mean remote RTT (cyc)", fmt(base.remoteRtt.mean(), 0),
                  fmt(hdpat.remoteRtt.mean(), 0)});
    table.addRow({"peer-cache share", "-",
                  fmtPct(hdpat.sourceFraction(
                      TranslationSource::PeerCache))});
    table.addRow({"redirection share", "-",
                  fmtPct(hdpat.sourceFraction(
                      TranslationSource::Redirect))});
    table.addRow({"proactive share", "-",
                  fmtPct(hdpat.sourceFraction(
                      TranslationSource::ProactiveDelivery))});
    table.addRow({"IOMMU share", "-",
                  fmtPct(hdpat.sourceFraction(
                      TranslationSource::IommuWalk))});
    table.print(std::cout);

    std::cout << "\nspeedup (baseline time / hdpat time): "
              << fmt(speedupOver(base, hdpat)) << "x\n";
    return 0;
}
