/**
 * @file
 * hdpat_cli: the kitchen-sink driver. Run any workload under any
 * policy on any preset configuration, print the human-readable report,
 * and optionally emit CSV (results and/or the IOMMU request trace) for
 * external analysis.
 *
 * Usage:
 *   hdpat_cli [--workload ABBR|all] [--policy NAME] [--config NAME]
 *             [--ops N] [--seed S] [--scale F] [--page-shift N]
 *             [--mesh WxH] [--jobs N] [--domains K]
 *             [--csv FILE] [--trace FILE]
 *             [--metrics-json FILE] [--trace-out FILE]
 *             [--trace-sample N|1/N] [--heartbeat TICKS]
 *             [--audit] [--watchdog TICKS] [--profile]
 *             [--spatial TICKS] [--spatial-csv FILE]
 *             [--latency] [--latency-sample N|1/N]
 *             [--latency-topk K] [--latency-report FILE]
 *             [--backpressure] [--backpressure-window TICKS]
 *             [--backpressure-report FILE]
 *
 * Flags accept both "--flag value" and "--flag=value". --metrics-json
 * dumps every registered metric as JSON; --trace-out writes sampled
 * per-translation spans in Chrome Trace Event Format (open in
 * Perfetto); --heartbeat logs progress every TICKS simulated ticks
 * (requires HDPAT_LOG=info). --jobs N (or HDPAT_JOBS=N) runs
 * "--workload all" sweeps N simulations at a time with results
 * identical to serial; multi-run --metrics-json/--trace-out/
 * --spatial-csv paths get a per-run "-<index>" suffix. --domains K
 * (or HDPAT_DOMAINS=K) shards each single simulation across K
 * threads by spatial domain decomposition, also with results
 * identical to serial.
 *
 * Introspection: --audit verifies conservation invariants at run end
 * (issue/retire, NoC send/deliver, MSHR and TLB balance); --watchdog
 * aborts with a diagnostic if no op retires for TICKS simulated ticks;
 * --spatial collects per-link/per-tile heatmaps into the metrics JSON
 * "spatial" section (and --spatial-csv as CSV); --profile reports
 * where host wall-clock goes, per subsystem; --latency attributes
 * every (sampled) translation's latency to pipeline stages, prints
 * the per-stage anatomy with exact tail quantiles, and exports the
 * metrics-JSON "latency" section (--latency-report also writes the
 * slowest-K critical-path timelines as text); --backpressure registers
 * every bounded structure as a named resource, prints the ranked
 * bottleneck table (saturation, occupancy integrals, Little's-law
 * cross-check), and exports the metrics-JSON "backpressure" section
 * (schema hdpat-metrics-v3).
 *
 * Policies: baseline, hdpat, route-based, concentric, distributed,
 *           cluster-rotation, redirection, prefetch, trans-fw,
 *           valkyrie, barre, hdpat-iommu-tlb
 * Configs:  MI100, MI200, MI300, H100, H200, MI100-7x12, MCM4
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "config/gpu_presets.hh"
#include "driver/parallel.hh"
#include "driver/report.hh"
#include "driver/runner.hh"
#include "driver/system.hh"
#include "driver/table_printer.hh"
#include "workloads/suite.hh"

using namespace hdpat;

namespace
{

TranslationPolicy
policyByName(const std::string &name)
{
    if (name == "baseline")
        return TranslationPolicy::baseline();
    if (name == "hdpat")
        return TranslationPolicy::hdpat();
    if (name == "route-based")
        return TranslationPolicy::routeCaching();
    if (name == "concentric")
        return TranslationPolicy::concentricCaching();
    if (name == "distributed")
        return TranslationPolicy::distributedCaching();
    if (name == "cluster-rotation")
        return TranslationPolicy::clusterRotation();
    if (name == "redirection")
        return TranslationPolicy::withRedirection();
    if (name == "prefetch")
        return TranslationPolicy::withPrefetch();
    if (name == "trans-fw")
        return TranslationPolicy::transFw();
    if (name == "valkyrie")
        return TranslationPolicy::valkyrie();
    if (name == "barre")
        return TranslationPolicy::barre();
    if (name == "hdpat-iommu-tlb")
        return TranslationPolicy::hdpatWithIommuTlb();
    std::cerr << "unknown policy: " << name << "\n";
    std::exit(1);
}

struct Options
{
    std::string workload = "SPMV";
    std::string policy = "hdpat";
    std::string config = "MI100";
    std::size_t ops = 0;
    std::uint64_t seed = 0x5eed;
    double scale = 1.0;
    int pageShift = 0;  ///< 0 = keep the preset's page size.
    int meshWidth = 0;  ///< 0 = keep the preset's mesh.
    int meshHeight = 0;
    std::string csv_path;
    std::string trace_path;
    ObsOptions obs = obsOptionsFromEnv();
};

Options
parse(int argc, char **argv)
{
    Options opt;
    // Support "--flag=value" by splitting into "--flag" "value".
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string raw = argv[i];
        const auto eq = raw.find('=');
        if (raw.size() > 2 && raw.compare(0, 2, "--") == 0 &&
            eq != std::string::npos) {
            args.push_back(raw.substr(0, eq));
            args.push_back(raw.substr(eq + 1));
        } else {
            args.push_back(raw);
        }
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string arg = args[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= args.size()) {
                std::cerr << arg << " needs a value\n";
                std::exit(1);
            }
            return args[++i];
        };
        if (arg == "--workload") {
            opt.workload = value();
        } else if (arg == "--policy") {
            opt.policy = value();
        } else if (arg == "--config") {
            opt.config = value();
        } else if (arg == "--ops") {
            opt.ops = static_cast<std::size_t>(
                std::atoll(value().c_str()));
        } else if (arg == "--seed") {
            opt.seed = static_cast<std::uint64_t>(
                std::atoll(value().c_str()));
        } else if (arg == "--scale") {
            opt.scale = std::atof(value().c_str());
        } else if (arg == "--page-shift") {
            opt.pageShift = std::atoi(value().c_str());
        } else if (arg == "--mesh") {
            // "WxH", e.g. --mesh 7x12.
            const std::string v = value();
            const auto x = v.find('x');
            if (x == std::string::npos) {
                std::cerr << "--mesh expects WxH (e.g. 7x12), got '"
                          << v << "'\n";
                std::exit(1);
            }
            opt.meshWidth = std::atoi(v.substr(0, x).c_str());
            opt.meshHeight = std::atoi(v.substr(x + 1).c_str());
        } else if (arg == "--csv") {
            opt.csv_path = value();
        } else if (arg == "--trace") {
            opt.trace_path = value();
        } else if (arg == "--metrics-json") {
            opt.obs.metricsJsonPath = value();
        } else if (arg == "--trace-out") {
            opt.obs.traceOutPath = value();
        } else if (arg == "--trace-sample") {
            // Accept "N" or "1/N".
            std::string v = value();
            const auto slash = v.find('/');
            if (slash != std::string::npos)
                v = v.substr(slash + 1);
            const long long n = std::atoll(v.c_str());
            if (n > 0)
                opt.obs.traceSampleN =
                    static_cast<std::uint64_t>(n);
        } else if (arg == "--heartbeat") {
            opt.obs.heartbeatInterval = std::atoll(value().c_str());
        } else if (arg == "--audit") {
            opt.obs.audit = true;
        } else if (arg == "--watchdog") {
            opt.obs.watchdogInterval = std::atoll(value().c_str());
        } else if (arg == "--spatial") {
            opt.obs.spatialWindow = std::atoll(value().c_str());
        } else if (arg == "--spatial-csv") {
            opt.obs.spatialCsvPath = value();
        } else if (arg == "--profile") {
            opt.obs.profile = true;
        } else if (arg == "--latency") {
            opt.obs.latency = true;
        } else if (arg == "--latency-sample") {
            std::string v = value();
            const auto slash = v.find('/');
            if (slash != std::string::npos)
                v = v.substr(slash + 1);
            const long long n = std::atoll(v.c_str());
            if (n > 0)
                opt.obs.latencySampleN =
                    static_cast<std::uint64_t>(n);
        } else if (arg == "--latency-topk") {
            const long long n = std::atoll(value().c_str());
            if (n > 0)
                opt.obs.latencyTopK = static_cast<std::size_t>(n);
        } else if (arg == "--latency-report") {
            opt.obs.latencyReportPath = value();
        } else if (arg == "--backpressure") {
            opt.obs.backpressure = true;
        } else if (arg == "--backpressure-window") {
            opt.obs.backpressureWindow = std::atoll(value().c_str());
        } else if (arg == "--backpressure-report") {
            opt.obs.backpressureReportPath = value();
        } else if (arg == "--jobs") {
            const long long n = std::atoll(value().c_str());
            if (n > 0)
                setDefaultJobs(static_cast<unsigned>(n));
        } else if (arg == "--domains") {
            const long long n = std::atoll(value().c_str());
            if (n > 0)
                opt.obs.domains = static_cast<unsigned>(n);
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: hdpat_cli [--workload ABBR|all] "
                   "[--policy NAME] [--config NAME] [--ops N] "
                   "[--seed S] [--scale F] [--page-shift N] "
                   "[--mesh WxH] [--jobs N] [--domains K] "
                   "[--csv FILE] "
                   "[--trace FILE] [--metrics-json FILE] "
                   "[--trace-out FILE] [--trace-sample N|1/N] "
                   "[--heartbeat TICKS] [--audit] [--watchdog TICKS] "
                   "[--spatial TICKS] [--spatial-csv FILE] "
                   "[--profile] [--latency] "
                   "[--latency-sample N|1/N] [--latency-topk K] "
                   "[--latency-report FILE] [--backpressure] "
                   "[--backpressure-window TICKS] "
                   "[--backpressure-report FILE]\n"
                   "  --jobs N  run multi-workload sweeps N "
                   "simulations at a time (default: HDPAT_JOBS or "
                   "all cores); results are identical to serial\n"
                   "  --domains K      shard each single simulation "
                   "across K threads (spatial domain\n"
                   "                   decomposition with conservative "
                   "synchronization; default 1 = serial);\n"
                   "                   results are bitwise identical "
                   "to serial for any K. Tracing, latency\n"
                   "                   attribution, spatial heatmaps, "
                   "and multi-tenancy fall back to serial\n"
                   "  --audit          verify conservation invariants "
                   "at run end (issue/retire, send/deliver,\n"
                   "                   MSHR and LL-TLB balance, queue "
                   "drains); abort with a diagnostic on violation\n"
                   "  --watchdog N     abort with the same diagnostic "
                   "if no op retires for N simulated ticks\n"
                   "  --spatial N      collect per-link and per-tile "
                   "heatmaps in N-tick windows\n"
                   "                   (exported as the metrics-JSON "
                   "\"spatial\" section)\n"
                   "  --spatial-csv F  also write the heatmaps as CSV "
                   "to F (implies --spatial)\n"
                   "  --profile        time the host's own hot paths; "
                   "print a per-subsystem table and export\n"
                   "                   the metrics-JSON \"profile\" "
                   "section\n"
                   "  --latency        attribute each translation's "
                   "latency to pipeline stages; print the\n"
                   "                   anatomy table with exact "
                   "p50/p95/p99/p999 and export the metrics-JSON\n"
                   "                   \"latency\" section (schema "
                   "hdpat-metrics-v2)\n"
                   "  --latency-sample N  attribute 1 in N sampled "
                   "translations (default 1 = exact mode;\n"
                   "                   deterministic per (tile, VPN, "
                   "tick) hash, accepts 1/N)\n"
                   "  --latency-topk K keep the K slowest spans for "
                   "the critical-path report (default 8)\n"
                   "  --latency-report F  write the slowest-span "
                   "timeline diagnostic to F (implies --latency)\n"
                   "  --backpressure   account every bounded "
                   "structure's occupancy, saturation, and\n"
                   "                   rejections as a named resource; "
                   "print the ranked bottleneck table,\n"
                   "                   cross-checked by the "
                   "Little's-law identity, and export the\n"
                   "                   metrics-JSON \"backpressure\" "
                   "section (schema hdpat-metrics-v3)\n"
                   "  --backpressure-window N  also keep per-N-tick "
                   "pressure histories (0 = totals only)\n"
                   "  --backpressure-report F  write the full ranked "
                   "bottleneck report to F\n"
                   "                   (implies --backpressure)\n"
                   "\n"
                   "environment variables (flags take precedence):\n"
                   "  HDPAT_METRICS_JSON=FILE  default for "
                   "--metrics-json\n"
                   "  HDPAT_TRACE_OUT=FILE     default for "
                   "--trace-out (Chrome Trace Event Format)\n"
                   "  HDPAT_TRACE_SAMPLE=N     default for "
                   "--trace-sample (trace 1 in N ops; accepts 1/N)\n"
                   "  HDPAT_HEARTBEAT=TICKS    default for "
                   "--heartbeat (-1 auto, 0 off)\n"
                   "  HDPAT_AUDIT=1            default for --audit\n"
                   "  HDPAT_WATCHDOG=TICKS     default for "
                   "--watchdog (0 off)\n"
                   "  HDPAT_SPATIAL=TICKS      default for "
                   "--spatial (0 off)\n"
                   "  HDPAT_SPATIAL_CSV=FILE   default for "
                   "--spatial-csv\n"
                   "  HDPAT_PROFILE=1          default for --profile\n"
                   "  HDPAT_LATENCY=1          default for --latency\n"
                   "  HDPAT_LATENCY_SAMPLE=N   default for "
                   "--latency-sample (accepts 1/N)\n"
                   "  HDPAT_LATENCY_TOPK=K     default for "
                   "--latency-topk\n"
                   "  HDPAT_LATENCY_REPORT=F   default for "
                   "--latency-report\n"
                   "  HDPAT_BACKPRESSURE=1     default for "
                   "--backpressure\n"
                   "  HDPAT_BACKPRESSURE_WINDOW=N  default for "
                   "--backpressure-window\n"
                   "  HDPAT_BACKPRESSURE_REPORT=F  default for "
                   "--backpressure-report\n"
                   "  HDPAT_JOBS=N             default for --jobs\n"
                   "  HDPAT_DOMAINS=K          default for --domains "
                   "(1 = serial single runs)\n"
                   "  HDPAT_TENANTS=N          multiplex N address "
                   "spaces (ASIDs) onto the wafer\n"
                   "  HDPAT_SWITCH_RATE=R      Poisson context "
                   "switches per million ticks (needs N > 1)\n"
                   "  HDPAT_CHURN_RATE=R       Poisson page "
                   "unmap/remap shootdowns per million ticks\n"
                   "  HDPAT_TENANCY_SEED=S     tenant-scheduler RNG "
                   "seed (all unset = single-tenant,\n"
                   "                           bitwise-identical "
                   "runs)\n"
                   "  HDPAT_EVENTQ=IMPL        event queue: calendar "
                   "(default) or heap (legacy; same results)\n"
                   "  HDPAT_NOC_FUSE=0         disable NoC arrival "
                   "fusion (per-companion events; same results)\n"
                   "  HDPAT_STREAM_CACHE=0     disable the shared "
                   "workload stream cache (same results)\n"
                   "  HDPAT_BENCH_SCALE=F      multiply bench op "
                   "counts by F\n"
                   "  HDPAT_LOG=LEVEL          log level: error, "
                   "warn, info, debug\n";
            std::exit(0);
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            std::exit(1);
        }
    }
    return opt;
}

RunSpec
specFor(const Options &opt, const std::string &workload)
{
    RunSpec spec;
    spec.config = configByName(opt.config);
    spec.policy = policyByName(opt.policy);
    if (opt.pageShift != 0)
        spec.config.pageShift = static_cast<unsigned>(opt.pageShift);
    if (opt.meshWidth != 0 || opt.meshHeight != 0) {
        spec.config.meshWidth = opt.meshWidth;
        spec.config.meshHeight = opt.meshHeight;
    }
    spec.workload = workload;
    spec.opsPerGpm = opt.ops;
    spec.seed = opt.seed;
    spec.footprintScale = opt.scale;
    spec.captureIommuTrace = !opt.trace_path.empty();
    spec.obs = opt.obs;

    // Fail fast on bad --page-shift / --mesh (or any other field)
    // before the sweep starts, listing every violated invariant.
    if (const auto errors = validationErrors(spec); !errors.empty()) {
        std::cerr << "invalid run options:\n";
        for (const std::string &e : errors)
            std::cerr << "  - " << e << "\n";
        std::exit(1);
    }
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    std::vector<std::string> workloads;
    if (opt.workload == "all") {
        workloads = workloadAbbrs();
    } else {
        workloads.push_back(opt.workload);
    }

    std::vector<RunSpec> specs;
    for (const std::string &wl : workloads)
        specs.push_back(specFor(opt, wl));
    const std::vector<RunResult> results = runMany(std::move(specs));

    TablePrinter table({"workload", "cycles", "remote", "offloaded",
                        "RTT mean", "IOMMU walks"});
    for (const RunResult &r : results) {
        table.addRow({r.workload, std::to_string(r.totalTicks),
                      std::to_string(r.remoteResolutions),
                      fmtPct(r.offloadedFraction()),
                      fmt(r.remoteRtt.mean(), 0),
                      std::to_string(r.iommu.walksCompleted)});
    }

    std::cout << "policy " << opt.policy << " on " << opt.config
              << " (" << results.front().config << ")\n\n";
    table.print(std::cout);

    if (!opt.csv_path.empty()) {
        std::ofstream csv(opt.csv_path);
        writeRunCsv(csv, results);
        std::cout << "\nwrote " << results.size() << " CSV rows to "
                  << opt.csv_path << "\n";
    }
    if (!opt.trace_path.empty()) {
        std::ofstream trace(opt.trace_path);
        writeTraceCsv(trace, results.back().iommu.trace);
        std::cout << "wrote " << results.back().iommu.trace.size()
                  << " trace rows to " << opt.trace_path << "\n";
    }

    if (opt.obs.profile) {
        const ProfileSnapshot merged = mergedProfile(results);
        std::cout << "\nhost self-profile (" << merged.runs
                  << " run" << (merged.runs == 1 ? "" : "s") << ", "
                  << fmt(static_cast<double>(merged.wallNanos) / 1e6,
                         1)
                  << " ms simulated wall-clock)\n";
        TablePrinter prof_table(
            {"section", "calls", "total ms", "ns/call"});
        for (std::size_t i = 0; i < kNumProfSections; ++i) {
            const auto &s = merged.sections[i];
            prof_table.addRow(
                {profSectionName(static_cast<ProfSection>(i)),
                 std::to_string(s.calls),
                 fmt(static_cast<double>(s.nanos) / 1e6, 1),
                 fmt(s.calls ? static_cast<double>(s.nanos) /
                                   static_cast<double>(s.calls)
                             : 0.0,
                     0)});
        }
        prof_table.print(std::cout);
    }

    if (opt.obs.latencyEnabled()) {
        LatencySnapshot merged;
        for (const RunResult &r : results)
            merged.merge(r.latency, opt.obs.latencyTopK);
        std::cout << "\ntranslation latency anatomy (" << merged.spans
                  << " spans, sample 1/" << merged.sampleN << ")\n";
        TablePrinter lat_table(
            {"stage", "spans", "mean", "p99", "share"});
        const double e2e_sum =
            merged.endToEnd.sum() > 0.0 ? merged.endToEnd.sum() : 1.0;
        for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
            const LatencyStageStats &stage = merged.stages[s];
            if (stage.stat.count() == 0)
                continue;
            lat_table.addRow(
                {latencyStageName(static_cast<LatencyStage>(s)),
                 std::to_string(stage.stat.count()),
                 fmt(stage.stat.mean(), 1),
                 std::to_string(stage.hist.quantile(0.99)),
                 fmtPct(stage.stat.sum() / e2e_sum)});
        }
        lat_table.print(std::cout);
        std::cout << "end-to-end ticks: mean "
                  << fmt(merged.endToEnd.mean(), 1) << "  p50 "
                  << merged.exactQuantile(0.50) << "  p95 "
                  << merged.exactQuantile(0.95) << "  p99 "
                  << merged.exactQuantile(0.99) << "  p999 "
                  << merged.exactQuantile(0.999) << "\n";
    }

    if (opt.obs.backpressureEnabled()) {
        // Snapshots of different runs are not mergeable (each has its
        // own tick axis), so print one ranked table per workload,
        // truncated; the full report goes to --backpressure-report.
        for (const RunResult &r : results) {
            std::cout << '\n' << r.workload << ' '
                      << bottleneckReport(r.backpressure, 12);
        }
    }
    return 0;
}
