/**
 * @file
 * Workload explorer: characterise any Table II benchmark's address
 * translation behaviour on the baseline system -- TLB hit rates,
 * remote-translation volume, the IOMMU request trace's reuse and
 * spatial-locality statistics (the paper's O3/O4 methodology applied
 * to one workload).
 *
 * Usage: workload_explorer [WORKLOAD] [OPS_PER_GPM]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "driver/runner.hh"
#include "driver/table_printer.hh"
#include "driver/trace_analysis.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "PR";
    const std::size_t ops =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8000;

    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.policy = TranslationPolicy::baseline();
    spec.workload = workload;
    spec.opsPerGpm = ops;
    spec.captureIommuTrace = true;
    const RunResult r = runOnce(spec);

    std::cout << "Workload " << workload << " on the baseline system ("
              << r.opsTotal << " ops total)\n\n";

    TablePrinter hier({"level", "hits", "share of ops"});
    const double total = static_cast<double>(r.opsTotal);
    hier.addRow({"L1 TLB", std::to_string(r.l1TlbHits),
                 fmtPct(r.l1TlbHits / total)});
    hier.addRow({"L2 TLB", std::to_string(r.l2TlbHits),
                 fmtPct(r.l2TlbHits / total)});
    hier.addRow({"last-level TLB", std::to_string(r.llTlbHits),
                 fmtPct(r.llTlbHits / total)});
    hier.addRow({"local page walk", std::to_string(r.localWalks),
                 fmtPct(r.localWalks / total)});
    hier.addRow({"remote (IOMMU path)", std::to_string(r.remoteOps),
                 fmtPct(r.remoteOps / total)});
    hier.print(std::cout);

    const IommuTrace &trace = r.iommu.trace;
    std::cout << "\nIOMMU request trace: " << trace.size()
              << " requests\n";
    if (trace.empty())
        return 0;

    const TranslationCountBuckets counts =
        analyzeTranslationCounts(trace);
    TablePrinter fig6({"translations per page", "pages", "fraction"});
    fig6.addRow({"1", std::to_string(counts.once),
                 fmtPct(counts.fraction(counts.once))});
    fig6.addRow({"2", std::to_string(counts.twice),
                 fmtPct(counts.fraction(counts.twice))});
    fig6.addRow({"3-10", std::to_string(counts.threeToTen),
                 fmtPct(counts.fraction(counts.threeToTen))});
    fig6.addRow({"11-100", std::to_string(counts.elevenToHundred),
                 fmtPct(counts.fraction(counts.elevenToHundred))});
    fig6.addRow({">100", std::to_string(counts.moreThanHundred),
                 fmtPct(counts.fraction(counts.moreThanHundred))});
    std::cout << '\n';
    fig6.print(std::cout);

    const auto spatial =
        spatialLocalityFractions(trace, {1, 2, 4, 8, 16});
    std::cout << "\nnext-request VPN proximity: <=1: "
              << fmtPct(spatial[0]) << "  <=2: " << fmtPct(spatial[1])
              << "  <=4: " << fmtPct(spatial[2])
              << "  <=8: " << fmtPct(spatial[3])
              << "  <=16: " << fmtPct(spatial[4]) << "\n";

    const Log2Histogram reuse = analyzeReuseDistance(trace);
    std::cout << "repeat translations: " << reuse.totalCount()
              << "  median reuse distance: " << reuse.quantile(0.5)
              << "  p90: " << reuse.quantile(0.9) << "\n";
    return 0;
}
