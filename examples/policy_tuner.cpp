/**
 * @file
 * Policy tuner: sweep HDPAT's tunables (concentric layer count C,
 * prefetch degree, auxiliary push threshold) for one workload and
 * print the best configuration -- the kind of design-space exploration
 * §IV-C says is "tunable by drivers or firmware".
 *
 * Usage: policy_tuner [WORKLOAD] [OPS_PER_GPM]
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "driver/runner.hh"
#include "driver/table_printer.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "FIR";
    const std::size_t ops =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 6000;

    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.workload = workload;
    spec.opsPerGpm = ops;

    spec.policy = TranslationPolicy::baseline();
    const RunResult base = runOnce(spec);

    std::cout << "HDPAT policy tuning for " << workload << " (baseline "
              << base.totalTicks << " cycles)\n\n";

    TablePrinter table({"C", "prefetch", "threshold", "cycles",
                        "speedup", "offload"});
    double best = 0.0;
    std::string best_desc;
    for (int layers : {1, 2, 3}) {
        for (int degree : {1, 4, 8}) {
            for (unsigned threshold : {1u, 2u, 4u}) {
                TranslationPolicy pol = TranslationPolicy::hdpat();
                pol.concentricLayers = layers;
                pol.prefetchDegree = degree;
                pol.prefetch = degree > 1;
                pol.auxPushThreshold = threshold;
                spec.policy = pol;
                const RunResult r = runOnce(spec);
                const double speedup = speedupOver(base, r);
                table.addRow({std::to_string(layers),
                              std::to_string(degree),
                              std::to_string(threshold),
                              std::to_string(r.totalTicks),
                              fmt(speedup) + "x",
                              fmtPct(r.offloadedFraction())});
                if (speedup > best) {
                    best = speedup;
                    best_desc = "C=" + std::to_string(layers) +
                                " prefetch=" + std::to_string(degree) +
                                " threshold=" + std::to_string(threshold);
                }
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nbest: " << best_desc << " (" << fmt(best) << "x)\n";
    return 0;
}
