/**
 * @file
 * Policy tuner: sweep HDPAT's tunables (concentric layer count C,
 * prefetch degree, auxiliary push threshold) for one workload and
 * print the best configuration -- the kind of design-space exploration
 * §IV-C says is "tunable by drivers or firmware".
 *
 * Usage: policy_tuner [WORKLOAD] [OPS_PER_GPM]
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "driver/parallel.hh"
#include "driver/runner.hh"
#include "driver/table_printer.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "FIR";
    const std::size_t ops =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 6000;

    RunSpec spec;
    spec.config = SystemConfig::mi100();
    spec.workload = workload;
    spec.opsPerGpm = ops;

    // Baseline first, then the full 3x3x3 tunable grid -- one batch
    // for the worker pool.
    struct Point
    {
        int layers;
        int degree;
        unsigned threshold;
    };
    std::vector<Point> points;
    std::vector<RunSpec> specs;
    spec.policy = TranslationPolicy::baseline();
    specs.push_back(spec);
    for (int layers : {1, 2, 3}) {
        for (int degree : {1, 4, 8}) {
            for (unsigned threshold : {1u, 2u, 4u}) {
                TranslationPolicy pol = TranslationPolicy::hdpat();
                pol.concentricLayers = layers;
                pol.prefetchDegree = degree;
                pol.prefetch = degree > 1;
                pol.auxPushThreshold = threshold;
                spec.policy = pol;
                points.push_back({layers, degree, threshold});
                specs.push_back(spec);
            }
        }
    }
    const std::vector<RunResult> runs = runMany(std::move(specs));
    const RunResult &base = runs[0];

    std::cout << "HDPAT policy tuning for " << workload << " (baseline "
              << base.totalTicks << " cycles)\n\n";

    TablePrinter table({"C", "prefetch", "threshold", "cycles",
                        "speedup", "offload"});
    double best = 0.0;
    std::string best_desc;
    for (std::size_t p = 0; p < points.size(); ++p) {
        const Point &pt = points[p];
        const RunResult &r = runs[p + 1];
        const double speedup = speedupOver(base, r);
        table.addRow({std::to_string(pt.layers),
                      std::to_string(pt.degree),
                      std::to_string(pt.threshold),
                      std::to_string(r.totalTicks),
                      fmt(speedup) + "x",
                      fmtPct(r.offloadedFraction())});
        if (speedup > best) {
            best = speedup;
            best_desc = "C=" + std::to_string(pt.layers) +
                        " prefetch=" + std::to_string(pt.degree) +
                        " threshold=" + std::to_string(pt.threshold);
        }
    }
    table.print(std::cout);
    std::cout << "\nbest: " << best_desc << " (" << fmt(best) << "x)\n";
    return 0;
}
