/**
 * @file
 * Wafer sweep: how does HDPAT's benefit change with wafer size? Runs a
 * workload on progressively larger meshes (3x3 up to 7x12) under the
 * baseline and HDPAT, showing the centralized IOMMU bottleneck grow
 * with GPM count and HDPAT's advantage grow with it (the paper's
 * motivation in a single program).
 *
 * Usage: wafer_sweep [WORKLOAD] [OPS_PER_GPM]
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "driver/parallel.hh"
#include "driver/runner.hh"
#include "driver/table_printer.hh"

using namespace hdpat;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "SPMV";
    const std::size_t ops =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 6000;

    struct Mesh
    {
        int w, h;
    };
    const std::vector<Mesh> meshes = {
        {3, 3}, {5, 5}, {7, 7}, {9, 7}, {12, 7}};

    std::cout << "HDPAT wafer-size sweep: " << workload << ", " << ops
              << " ops per GPM\n\n";

    // One baseline + one HDPAT run per mesh, all on the worker pool.
    std::vector<SystemConfig> configs;
    std::vector<RunSpec> specs;
    for (const Mesh &mesh : meshes) {
        RunSpec spec;
        spec.config = SystemConfig::mi100();
        spec.config.meshWidth = mesh.w;
        spec.config.meshHeight = mesh.h;
        spec.config.name = std::to_string(mesh.w) + "x" +
                           std::to_string(mesh.h);
        spec.workload = workload;
        spec.opsPerGpm = ops;
        configs.push_back(spec.config);

        spec.policy = TranslationPolicy::baseline();
        specs.push_back(spec);
        spec.policy = TranslationPolicy::hdpat();
        specs.push_back(spec);
    }
    const std::vector<RunResult> runs = runMany(std::move(specs));

    TablePrinter table({"mesh", "GPMs", "baseline cyc", "hdpat cyc",
                        "speedup", "IOMMU offload"});
    for (std::size_t m = 0; m < meshes.size(); ++m) {
        const RunResult &base = runs[2 * m];
        const RunResult &hdpat = runs[2 * m + 1];
        table.addRow({configs[m].name,
                      std::to_string(configs[m].numGpms()),
                      std::to_string(base.totalTicks),
                      std::to_string(hdpat.totalTicks),
                      fmt(speedupOver(base, hdpat)) + "x",
                      fmtPct(hdpat.offloadedFraction())});
    }
    table.print(std::cout);
    return 0;
}
